package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pico/internal/nn"
)

func TestRangeBasics(t *testing.T) {
	r := Range{2, 5}
	if r.Len() != 3 || r.Empty() {
		t.Fatalf("Len/Empty wrong for %v", r)
	}
	if (Range{5, 2}).Len() != 0 || !(Range{5, 5}).Empty() {
		t.Fatal("inverted/empty ranges mishandled")
	}
	if got := r.Intersect(Range{4, 9}); got != (Range{4, 5}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := r.Intersect(Range{7, 9}); !got.Empty() {
		t.Fatalf("disjoint Intersect = %v, want empty", got)
	}
	if got := r.Hull(Range{7, 9}); got != (Range{2, 9}) {
		t.Fatalf("Hull = %v", got)
	}
	if got := r.Hull(Range{}); got != r {
		t.Fatalf("Hull with empty = %v", got)
	}
	if got := (Range{-3, 99}).Clamp(10); got != (Range{0, 10}) {
		t.Fatalf("Clamp = %v", got)
	}
	if !r.Contains(Range{3, 4}) || r.Contains(Range{3, 6}) {
		t.Fatal("Contains wrong")
	}
	if !r.Contains(Range{}) {
		t.Fatal("every range contains the empty range")
	}
	if Full(7) != (Range{0, 7}) {
		t.Fatal("Full wrong")
	}
	if r.String() != "[2,5)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestEqualPartition(t *testing.T) {
	parts := Equal(10, 3)
	if len(parts) != 3 {
		t.Fatalf("len = %d", len(parts))
	}
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i, w := range want {
		if parts[i] != w {
			t.Fatalf("parts[%d] = %v, want %v", i, parts[i], w)
		}
	}
	// More devices than rows: trailing strips empty, all rows covered.
	parts = Equal(3, 5)
	covered := 0
	for _, p := range parts {
		covered += p.Len()
	}
	if covered != 3 {
		t.Fatalf("covered = %d", covered)
	}
	if Equal(5, 0) != nil {
		t.Fatal("Equal with p=0 should be nil")
	}
}

func TestEqualPartitionProperties(t *testing.T) {
	f := func(h8, p8 uint8) bool {
		h := int(h8%200) + 1
		p := int(p8%12) + 1
		parts := Equal(h, p)
		lo := 0
		minSz, maxSz := h, 0
		for _, r := range parts {
			if r.Lo != lo {
				return false // contiguous, in order
			}
			lo = r.Hi
			if r.Len() < minSz {
				minSz = r.Len()
			}
			if r.Len() > maxSz {
				maxSz = r.Len()
			}
		}
		return lo == h && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalPartition(t *testing.T) {
	parts := Proportional(100, []float64{1, 1, 2})
	if parts[2].Len() < parts[0].Len() {
		t.Fatalf("weight-2 strip smaller than weight-1: %v", parts)
	}
	total := 0
	lo := 0
	for _, r := range parts {
		if r.Lo != lo {
			t.Fatalf("non-contiguous: %v", parts)
		}
		lo = r.Hi
		total += r.Len()
	}
	if total != 100 {
		t.Fatalf("covered %d rows", total)
	}
	// All-zero weights degrade to Equal.
	parts = Proportional(9, []float64{0, 0, 0})
	if parts[0].Len() != 3 {
		t.Fatalf("zero weights: %v", parts)
	}
}

func TestSegmentRangesVGGManual(t *testing.T) {
	m := nn.VGG16()
	c := NewCalc(m)
	// conv1_1 (3x3 s1 p1): output rows [10,20) need input rows [9,21).
	r := c.InputRange(0, 1, Range{10, 20})
	if r != (Range{9, 21}) {
		t.Fatalf("conv rf = %v, want [9,21)", r)
	}
	// At the top boundary padding clamps to 0.
	r = c.InputRange(0, 1, Range{0, 5})
	if r != (Range{0, 6}) {
		t.Fatalf("clamped rf = %v, want [0,6)", r)
	}
	// pool1 is layer 2 (2x2 s2): output rows [3,5) need input rows [6,10).
	r = c.InputRange(2, 3, Range{3, 5})
	if r != (Range{6, 10}) {
		t.Fatalf("pool rf = %v, want [6,10)", r)
	}
	// Two convs + pool: back through pool then two 3x3s grows by 1 each.
	r = c.InputRange(0, 3, Range{3, 5})
	if r != (Range{4, 12}) {
		t.Fatalf("segment rf = %v, want [4,12)", r)
	}
}

func TestPaperRFMode(t *testing.T) {
	m := nn.VGG16()
	c := &Calc{M: m, Mode: PaperRF}
	// Paper Eq. 3 for a 3x3 s1 conv: h_in = (h_out-1)*1 + 3 regardless of
	// boundaries; with padding offset the range extends past row 0.
	r := c.InputRange(0, 1, Range{0, 5})
	if r != (Range{-1, 6}) {
		t.Fatalf("paper rf = %v, want [-1,6)", r)
	}
	if r.Len() != 7 {
		t.Fatalf("paper rf len = %d, want (5-1)*1+3 = 7", r.Len())
	}
}

func TestFullInputLayers(t *testing.T) {
	m := nn.VGG16()
	c := NewCalc(m)
	// Crossing fc6 (layer 18) requires the whole 7x7 input.
	r := c.InputRange(18, 19, Range{0, 1})
	if r != (Range{0, 7}) {
		t.Fatalf("fc rf = %v, want [0,7)", r)
	}
}

func TestBlockInputRangeIsPathHull(t *testing.T) {
	m := nn.TinyGraph()
	c := NewCalc(m)
	// Layer 1 is res1 (two 3x3 s1 convs + identity). Output rows [10,12):
	// main path needs [8,14), identity needs [10,12); hull is [8,14).
	r := c.InputRange(1, 2, Range{10, 12})
	if r != (Range{8, 14}) {
		t.Fatalf("block rf = %v, want [8,14)", r)
	}
	// res2 (stride 2 + projection): output rows [2,4) -> main path conv_a
	// output rows... conv_b 3x3 s1 needs [1,5); conv_a 3x3 s2 needs
	// [1*2-1, 4*2-1+3) = [1,10); proj 1x1 s2 needs [4,8). Hull = [1,10).
	r = c.InputRange(2, 3, Range{2, 4})
	if r != (Range{1, 10}) {
		t.Fatalf("res2 rf = %v, want [1,10)", r)
	}
}

func TestSegmentRegionFLOPsFullEqualsModel(t *testing.T) {
	models := []*nn.Model{nn.VGG16(), nn.YOLOv2(), nn.ResNet34(), nn.InceptionV3(), nn.TinyGraph()}
	for _, m := range models {
		c := NewCalc(m)
		L := m.NumLayers()
		outH := m.Output().H
		got := c.SegmentRegionFLOPs(0, L, Full(outH))
		want := m.TotalFLOPs()
		if got != want {
			t.Errorf("%s: full-region FLOPs = %d, want %d", m.Name, got, want)
		}
	}
}

func TestRegionFLOPsMonotone(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	f := func(from8, len8, lo8, sz8 uint8) bool {
		from := int(from8) % m.NumLayers()
		to := from + 1 + int(len8)%(m.NumLayers()-from)
		outH := m.OutShape(to - 1).H
		lo := int(lo8) % outH
		sz := int(sz8)%(outH-lo) + 1
		small := c.SegmentRegionFLOPs(from, to, Range{lo, lo + sz})
		if sz < outH-lo {
			bigger := c.SegmentRegionFLOPs(from, to, Range{lo, lo + sz + 1})
			if bigger < small {
				return false
			}
		}
		// A region never costs more than the whole and less than nothing.
		whole := c.SegmentRegionFLOPs(from, to, Full(outH))
		return small >= 0 && small <= whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapGrowsWithDepth(t *testing.T) {
	// The paper's Fig. 4 premise: with the fused segment deepening, the sum
	// of per-device FLOPs grows beyond the whole-model FLOPs.
	m := nn.VGG16Conv()
	c := NewCalc(m)
	const p = 4
	prevRatio := 0.0
	for to := 1; to <= 7; to++ {
		outH := m.OutShape(to - 1).H
		parts := Equal(outH, p)
		var sum int64
		for _, r := range parts {
			sum += c.SegmentRegionFLOPs(0, to, r)
		}
		whole := c.SegmentRegionFLOPs(0, to, Full(outH))
		ratio := float64(sum) / float64(whole)
		if ratio < 1-1e-9 {
			t.Fatalf("to=%d: parallel work %.4f < whole", to, ratio)
		}
		if to > 1 && ratio+1e-9 < prevRatio {
			// Redundancy ratio should not shrink as layers fuse deeper
			// (it can plateau right after a pool).
			t.Logf("to=%d: ratio %.4f dipped below %.4f (pool boundary)", to, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 1.05 {
		t.Fatalf("fusing 7 layers over 4 devices should add >5%% redundancy, got %.4f", prevRatio)
	}
}

func TestSegmentIOBytes(t *testing.T) {
	m := nn.VGG16()
	c := NewCalc(m)
	in, out := c.SegmentIOBytes(0, 1, Range{0, 112})
	// Input rows [0,113) x 3ch x 224 wide x 4B; output 112 x 64 x 224 x 4.
	if in != int64(113*3*224*4) {
		t.Fatalf("in bytes = %d", in)
	}
	if out != int64(112*64*224*4) {
		t.Fatalf("out bytes = %d", out)
	}
}

func TestBalancedHomogeneousMatchesEqualish(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	weights := []float64{1, 1, 1, 1}
	parts := c.Balanced(0, 4, weights)
	covered := 0
	for _, r := range parts {
		covered += r.Len()
	}
	if covered != m.OutShape(3).H {
		t.Fatalf("covered %d rows, want %d", covered, m.OutShape(3).H)
	}
	// Strip work must be within 2x of each other for equal weights.
	var times []float64
	for _, r := range parts {
		if !r.Empty() {
			times = append(times, float64(c.SegmentRegionFLOPs(0, 4, r)))
		}
	}
	for _, tm := range times {
		if tm > 2*times[0]+1 {
			t.Fatalf("unbalanced homogeneous strips: %v", times)
		}
	}
}

func TestBalancedHeterogeneousBeatsEqual(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	weights := []float64{2, 1, 0.5, 0.5}
	from, to := 0, 7
	outH := m.OutShape(to - 1).H
	period := func(parts []Range) float64 {
		worst := 0.0
		for k, r := range parts {
			tk := float64(c.SegmentRegionFLOPs(from, to, r)) / weights[k]
			if tk > worst {
				worst = tk
			}
		}
		return worst
	}
	bal := period(c.Balanced(from, to, weights))
	eq := period(Equal(outH, len(weights)))
	if bal >= eq {
		t.Fatalf("balanced period %.3g >= equal period %.3g", bal, eq)
	}
	// The balanced bottleneck can be at most ~35% above the ideal
	// (overlap makes perfection unattainable, but it must be close).
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	ideal := float64(c.SegmentRegionFLOPs(from, to, Full(outH))) / totalW
	if bal > ideal*1.35 {
		t.Fatalf("balanced period %.3g too far above ideal %.3g", bal, ideal)
	}
}

func TestBalancedFullInputSegment(t *testing.T) {
	m := nn.VGG16()
	c := NewCalc(m)
	weights := []float64{1, 3, 2}
	parts := c.Balanced(18, 21, weights) // the fc head
	if !parts[0].Empty() || !parts[2].Empty() {
		t.Fatalf("fc segment must go to one device: %v", parts)
	}
	if parts[1] != (Range{0, 1}) {
		t.Fatalf("fastest device must own the fc head: %v", parts)
	}
}

func TestBalancedZeroWeights(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	parts := c.Balanced(0, 2, []float64{0, 0})
	covered := 0
	for _, r := range parts {
		covered += r.Len()
	}
	if covered != m.OutShape(1).H {
		t.Fatalf("zero-weight fallback covered %d rows", covered)
	}
}

func TestBalancedPropertyCoversExactly(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		from := rng.Intn(m.NumLayers() - 1)
		to := from + 1 + rng.Intn(min(5, m.NumLayers()-from))
		p := 1 + rng.Intn(6)
		weights := make([]float64, p)
		for i := range weights {
			weights[i] = 0.25 + rng.Float64()*3
		}
		parts := c.Balanced(from, to, weights)
		outH := m.OutShape(to - 1).H
		// Strips must be disjoint, sorted by construction order, and
		// cover [0, outH) exactly.
		covered := make([]bool, outH)
		for _, r := range parts {
			for row := r.Lo; row < r.Hi; row++ {
				if covered[row] {
					t.Fatalf("row %d covered twice: %v", row, parts)
				}
				covered[row] = true
			}
		}
		for row, ok := range covered {
			if !ok {
				t.Fatalf("row %d uncovered: %v (segment [%d,%d), weights %v)", row, parts, from, to, weights)
			}
		}
	}
}

func TestRedundancyNoOverlapFor1x1(t *testing.T) {
	// A model of only 1x1 convolutions has zero overlap however it is
	// partitioned — the property the paper's NP-hardness reduction uses.
	layers := []nn.Layer{
		nn.Conv1x1("a", 8, nn.ReLU),
		nn.Conv1x1("b", 8, nn.ReLU),
		nn.Conv1x1("c", 8, nn.ReLU),
	}
	m := &nn.Model{Name: "ones", Input: nn.Shape{C: 4, H: 32, W: 32}, Layers: layers}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := NewCalc(m)
	stats := c.Redundancy(0, 3, Equal(32, 4))
	if stats.RedundantFLOPs != 0 {
		t.Fatalf("1x1 chain has redundancy %.3g", stats.RedundantFLOPs)
	}
	if stats.Ratio() != 0 {
		t.Fatalf("ratio = %v", stats.Ratio())
	}
}

func TestRedundancySingleDeviceZero(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	outH := m.OutShape(6).H
	stats := c.Redundancy(0, 7, []Range{Full(outH)})
	if stats.RedundantFLOPs != 0 {
		t.Fatalf("single device redundancy = %.3g", stats.RedundantFLOPs)
	}
	if stats.TotalFLOPs != float64(m.SegmentFLOPs(0, 7)) {
		t.Fatalf("total = %.6g, want %.6g", stats.TotalFLOPs, float64(m.SegmentFLOPs(0, 7)))
	}
}

func TestRedundancyGrowsWithDevices(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	outH := m.OutShape(6).H
	prev := -1.0
	for _, p := range []int{2, 4, 8} {
		stats := c.Redundancy(0, 7, Equal(outH, p))
		if stats.Ratio() <= prev {
			t.Fatalf("redundancy ratio not increasing: p=%d ratio=%.4f prev=%.4f", p, stats.Ratio(), prev)
		}
		prev = stats.Ratio()
	}
}

func TestRedundancyConsistentWithRegionFLOPs(t *testing.T) {
	// TotalFLOPs from the occupancy walk must equal the sum of per-device
	// SegmentRegionFLOPs for chain models.
	m := nn.VGG16Conv()
	c := NewCalc(m)
	from, to := 2, 9
	outH := m.OutShape(to - 1).H
	parts := Equal(outH, 5)
	stats := c.Redundancy(from, to, parts)
	var want float64
	for _, r := range parts {
		want += float64(c.SegmentRegionFLOPs(from, to, r))
	}
	if diff := stats.TotalFLOPs - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Fatalf("occupancy total %.6g != region sum %.6g", stats.TotalFLOPs, want)
	}
	// Per-device totals sum to the global total; same for redundant work.
	var pd, pr float64
	for k := range parts {
		pd += stats.PerDeviceFLOPs[k]
		pr += stats.PerDeviceRedundant[k]
	}
	if d := pd - stats.TotalFLOPs; d > 1e-6 || d < -1e-6 {
		t.Fatalf("per-device totals %.6g != %.6g", pd, stats.TotalFLOPs)
	}
	if d := pr - stats.RedundantFLOPs; d > 1e-6 || d < -1e-6 {
		t.Fatalf("per-device redundant %.6g != %.6g", pr, stats.RedundantFLOPs)
	}
}

func TestRedundancyGraphModel(t *testing.T) {
	m := nn.TinyGraph()
	c := NewCalc(m)
	outH := m.Output().H
	stats := c.Redundancy(0, m.NumLayers(), Equal(outH, 3))
	if stats.TotalFLOPs <= 0 {
		t.Fatal("graph redundancy total is zero")
	}
	if stats.Ratio() <= 0 || stats.Ratio() >= 1 {
		t.Fatalf("graph redundancy ratio = %.4f, want (0,1)", stats.Ratio())
	}
	var sum float64
	for _, r := range Equal(outH, 3) {
		sum += float64(c.SegmentRegionFLOPs(0, m.NumLayers(), r))
	}
	if d := stats.TotalFLOPs - sum; d > 1e-6*sum || d < -1e-6*sum {
		t.Fatalf("graph occupancy total %.6g != region sum %.6g", stats.TotalFLOPs, sum)
	}
}

func TestDeviceRatioBounds(t *testing.T) {
	m := nn.VGG16Conv()
	c := NewCalc(m)
	outH := m.OutShape(4).H
	parts := Equal(outH, 4)
	stats := c.Redundancy(0, 5, parts)
	for k := range parts {
		r := stats.DeviceRatio(k)
		if r < 0 || r >= 1 {
			t.Fatalf("device %d ratio = %.4f", k, r)
		}
	}
	// An idle device has ratio 0.
	stats = c.Redundancy(0, 5, []Range{Full(outH), {}})
	if stats.DeviceRatio(1) != 0 {
		t.Fatal("idle device ratio must be 0")
	}
}
