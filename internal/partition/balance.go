package partition

import (
	"fmt"
	"sort"
)

// Balanced computes capacity-aware strips for segment [from, to): the
// divide-and-conquer re-balancing of Algorithm 2 (line 10). It returns one
// output row range per device such that the maximum per-device compute time
// (region FLOPs divided by capacity) is minimized. Weights are effective
// device speeds, i.e. ϑ(d_k)/α_k in the paper's Eq. (5).
//
// The search is a binary "divide and conquer" on the bottleneck time: for a
// candidate period every device greedily takes the longest prefix of the
// remaining rows it can finish in time, which is feasibility-monotone in the
// candidate, so bisection converges to the optimum for this assignment
// order. Devices are tried fastest-first so large strips land on fast
// devices.
//
// If any layer in the segment requires the full input feature map (fully
// connected, global pooling), spatial splitting is impossible: the whole
// output goes to the fastest device and all other strips are empty.
func (c *Calc) Balanced(from, to int, weights []float64) []Range {
	p := len(weights)
	if p == 0 {
		return nil
	}
	outH := c.M.OutShape(to - 1).H
	order := speedOrder(weights)

	if c.segmentNeedsFullInput(from, to) || outH == 1 {
		parts := make([]Range, p)
		parts[order[0]] = Range{0, outH}
		return parts
	}

	// Upper bound: the fastest device computes everything.
	maxW := weights[order[0]]
	if maxW <= 0 {
		return Equal(outH, p)
	}
	hi := float64(c.SegmentRegionFLOPs(from, to, Full(outH))) / maxW
	lo := 0.0
	// Bisect the candidate period. 48 iterations puts the relative error
	// far below one row's worth of work.
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if c.feasible(from, to, outH, weights, order, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	parts, ok := c.assign(from, to, outH, weights, order, hi)
	if !ok {
		// hi started feasible and only shrank while feasible, but guard
		// against floating-point edge cases by retrying with slack.
		parts, ok = c.assign(from, to, outH, weights, order, hi*(1+1e-9)+1e-12)
		if !ok {
			panic(fmt.Sprintf("partition: Balanced failed for segment [%d,%d)", from, to))
		}
	}
	return parts
}

func (c *Calc) segmentNeedsFullInput(from, to int) bool {
	for i := from; i < to; i++ {
		if c.M.Layers[i].NeedsFullInput() {
			return true
		}
	}
	return false
}

// speedOrder returns device indices sorted by descending weight (stable on
// index for determinism).
func speedOrder(weights []float64) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	return order
}

func (c *Calc) feasible(from, to, outH int, weights []float64, order []int, period float64) bool {
	_, ok := c.assign(from, to, outH, weights, order, period)
	return ok
}

// assign greedily hands out maximal strips under the candidate period.
func (c *Calc) assign(from, to, outH int, weights []float64, order []int, period float64) ([]Range, bool) {
	parts := make([]Range, len(weights))
	offset := 0
	for _, di := range order {
		if offset >= outH {
			break
		}
		w := weights[di]
		if w <= 0 {
			continue
		}
		budget := period * w
		// Binary search the largest row count r with
		// FLOPs(offset, offset+r) <= budget. FLOPs is monotone in r.
		lo, hiR := 0, outH-offset
		for lo < hiR {
			mid := (lo + hiR + 1) / 2
			if float64(c.SegmentRegionFLOPs(from, to, Range{offset, offset + mid})) <= budget {
				lo = mid
			} else {
				hiR = mid - 1
			}
		}
		if lo > 0 {
			parts[di] = Range{offset, offset + lo}
			offset += lo
		}
	}
	return parts, offset >= outH
}
