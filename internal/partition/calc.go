package partition

import (
	"fmt"

	"pico/internal/nn"
)

// RFMode selects how receptive fields behave at feature-map boundaries.
type RFMode int

const (
	// Clamped restricts every back-propagated range to the real extent of
	// the layer input. This is required for bit-exact tile execution and
	// is the default for all experiments.
	Clamped RFMode = iota + 1
	// PaperRF follows the paper's Eq. (3) verbatim — the required input
	// extent is (h-1)s + k regardless of padding or boundaries — so ranges
	// may extend past the tensor (the overshoot counts as if it were real
	// rows). Provided for fidelity comparisons with the paper's cost
	// numbers.
	PaperRF
)

// Calc computes receptive fields, region FLOPs and region sizes for one
// model. It is stateless apart from the model reference and is safe for
// concurrent use.
type Calc struct {
	M    *nn.Model
	Mode RFMode
}

// NewCalc returns a Calc in Clamped mode.
func NewCalc(m *nn.Model) *Calc { return &Calc{M: m, Mode: Clamped} }

// layerInRange back-propagates an output row range through a single layer
// with the given input height.
func (c *Calc) layerInRange(l *nn.Layer, out Range, inH int) Range {
	if out.Empty() {
		return Range{}
	}
	switch l.Kind {
	case nn.Conv, nn.MaxPool, nn.AvgPool:
		lo := out.Lo*l.SH - l.PH
		hi := (out.Hi-1)*l.SH - l.PH + l.KH
		r := Range{lo, hi}
		if c.Mode == Clamped {
			r = r.Clamp(inH)
		}
		return r
	case nn.GlobalAvgPool, nn.FullyConnected:
		return Range{0, inH}
	case nn.Block:
		var hull Range
		for _, path := range l.Paths {
			hull = hull.Hull(c.pathInRange(path, out, inH))
		}
		return hull
	default:
		panic(fmt.Sprintf("partition: unknown layer kind %v", l.Kind))
	}
}

// pathInRange back-propagates through a block path (a chain applied to the
// block input of height inH). An empty path is the identity.
func (c *Calc) pathInRange(path []nn.Layer, out Range, inH int) Range {
	heights := c.pathHeights(path, inH)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		r = c.layerInRange(&path[i], r, heights[i])
	}
	return r
}

// pathHeights returns the input height of each layer in a block path;
// heights[i] is the input height of path[i].
func (c *Calc) pathHeights(path []nn.Layer, inH int) []int {
	heights := make([]int, len(path)+1)
	heights[0] = inH
	// Width/channels do not affect row back-propagation; a representative
	// shape is enough to advance heights.
	cur := nn.Shape{C: 1, H: inH, W: 8}
	for i := range path {
		next, err := path[i].OutShape(cur)
		if err != nil {
			panic(fmt.Sprintf("partition: invalid block path layer %q: %v", path[i].Name, err))
		}
		cur = next
		heights[i+1] = cur.H
	}
	return heights
}

// SegmentRanges back-propagates the output row range of segment [from, to)
// to every layer boundary. The result has to-from+1 entries: entry k is the
// required row range at the input of layer from+k (entry to-from is the
// output range itself). This realizes the recursive Eq. (3) with boundary
// clamping.
func (c *Calc) SegmentRanges(from, to int, out Range) []Range {
	if from < 0 || to > len(c.M.Layers) || from >= to {
		panic(fmt.Sprintf("partition: invalid segment [%d,%d)", from, to))
	}
	shapes := c.M.Shapes()
	ranges := make([]Range, to-from+1)
	ranges[to-from] = out
	r := out
	for i := to - 1; i >= from; i-- {
		r = c.layerInRange(&c.M.Layers[i], r, shapes[i].H)
		ranges[i-from] = r
	}
	return ranges
}

// InputRange returns the input row range segment [from, to) needs to produce
// the output rows out.
func (c *Calc) InputRange(from, to int, out Range) Range {
	return c.SegmentRanges(from, to, out)[0]
}

// rowFLOPs returns the MACs to produce one output row of layer l.
func rowFLOPs(l *nn.Layer, in, out nn.Shape) int64 {
	switch l.Kind {
	case nn.Conv:
		g := int64(1)
		if l.Groups > 1 {
			g = int64(l.Groups)
		}
		return int64(l.KH) * int64(l.KW) * int64(in.C) / g * int64(out.W) * int64(out.C)
	case nn.FullyConnected:
		// FC output is a single "row"; producing it costs the whole layer.
		return int64(in.Elems()) * int64(l.OutF)
	default:
		return 0
	}
}

// LayerRegionFLOPs returns the MACs of layer index i when producing the
// given output row range — the paper's f(l_i; F_i^k), Eq. (2) restricted to
// a region. Blocks descend into their paths.
func (c *Calc) LayerRegionFLOPs(i int, out Range) int64 {
	l := &c.M.Layers[i]
	in := c.M.InShape(i)
	outShape := c.M.OutShape(i)
	return c.layerRegionFLOPs(l, in, outShape, out)
}

func (c *Calc) layerRegionFLOPs(l *nn.Layer, in, outShape nn.Shape, out Range) int64 {
	if out.Empty() {
		return 0
	}
	switch l.Kind {
	case nn.Block:
		var sum int64
		for _, path := range l.Paths {
			sum += c.pathRegionFLOPs(path, in, out)
		}
		return sum
	default:
		return rowFLOPs(l, in, outShape) * int64(out.Len())
	}
}

// pathRegionFLOPs returns the MACs of one block path producing the given
// output row range, back-propagating the needed rows through the path.
func (c *Calc) pathRegionFLOPs(path []nn.Layer, blockIn nn.Shape, out Range) int64 {
	if len(path) == 0 {
		return 0 // identity shortcut
	}
	// Forward shapes within the path.
	shapes := make([]nn.Shape, len(path)+1)
	shapes[0] = blockIn
	for i := range path {
		next, err := path[i].OutShape(shapes[i])
		if err != nil {
			panic(fmt.Sprintf("partition: invalid block path layer %q: %v", path[i].Name, err))
		}
		shapes[i+1] = next
	}
	// Backward ranges: needs[i] is the output row range path layer i-1 must
	// produce (equivalently, the rows path[i] consumes as input).
	needs := make([]Range, len(path)+1)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		needs[i+1] = r
		r = c.layerInRange(&path[i], r, shapes[i].H)
	}
	var sum int64
	for i := range path {
		sum += c.layerRegionFLOPs(&path[i], shapes[i], shapes[i+1], needs[i+1])
	}
	return sum
}

// SegmentRegionFLOPs returns θ(M_{from→to}; F^k) — Eq. (4): the MACs a
// device performs to produce the output rows out of segment [from, to),
// including all overlap-induced recomputation of intermediate rows.
func (c *Calc) SegmentRegionFLOPs(from, to int, out Range) int64 {
	ranges := c.SegmentRanges(from, to, out)
	var sum int64
	for i := from; i < to; i++ {
		sum += c.LayerRegionFLOPs(i, ranges[i-from+1])
	}
	return sum
}

// RegionBytes returns φ(F) for a row range of the feature map at layer
// boundary idx (0 = model input, i = output of layer i-1): the float32 byte
// size of the partial feature map a device must receive or send.
func (c *Calc) RegionBytes(idx int, r Range) int64 {
	s := c.M.Shapes()[idx]
	rows := r
	if c.Mode == Clamped {
		rows = r.Clamp(s.H)
	}
	return int64(rows.Len()) * int64(s.C) * int64(s.W) * 4
}

// SegmentIOBytes returns the input and output byte volumes of a device
// producing output rows out of segment [from, to) — the φ(F_i^k)+φ(F_j^k)
// numerator of Eq. (7).
func (c *Calc) SegmentIOBytes(from, to int, out Range) (in, outBytes int64) {
	r := c.InputRange(from, to, out)
	return c.RegionBytes(from, r), c.RegionBytes(to, out)
}

// PathRanges back-propagates an output row range through one block path.
// The result has len(path)+1 entries: entry 0 is the needed block-input row
// range and entry i+1 is the output row range path[i] must produce. inH is
// the block input height. Used by the tensor engine to execute blocks on
// row tiles.
func (c *Calc) PathRanges(path []nn.Layer, out Range, inH int) []Range {
	heights := c.pathHeights(path, inH)
	needs := make([]Range, len(path)+1)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		needs[i+1] = r
		r = c.layerInRange(&path[i], r, heights[i])
	}
	needs[0] = r
	return needs
}

// PathHeights returns the input height of each layer in a block path plus
// the path output height; entry i is the input height of path[i].
func (c *Calc) PathHeights(path []nn.Layer, inH int) []int {
	return c.pathHeights(path, inH)
}
