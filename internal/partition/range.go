// Package partition implements the feature-map partition mathematics of the
// paper: receptive-field back-propagation through layer segments (Eq. 3),
// region FLOPs (Eq. 2/4), equal and capacity-aware (divide-and-conquer)
// strip balancing, and overlap/redundancy accounting.
//
// Feature maps are partitioned along the row (height) axis into horizontal
// strips, the scheme used by MoDNN and the paper. A Range is a half-open row
// interval [Lo, Hi) of a layer's output feature map.
package partition

import "fmt"

// Range is a half-open interval [Lo, Hi) of feature-map rows.
type Range struct {
	Lo, Hi int
}

// Full returns the range covering all h rows.
func Full(h int) Range { return Range{0, h} }

// Len returns the number of rows in the range.
func (r Range) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether the range contains no rows.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether other is entirely inside r.
func (r Range) Contains(other Range) bool {
	return other.Empty() || (other.Lo >= r.Lo && other.Hi <= r.Hi)
}

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range) Intersect(other Range) Range {
	lo := max(r.Lo, other.Lo)
	hi := min(r.Hi, other.Hi)
	if hi < lo {
		return Range{lo, lo}
	}
	return Range{lo, hi}
}

// Hull returns the smallest range containing both r and other.
// Empty operands are ignored.
func (r Range) Hull(other Range) Range {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	return Range{min(r.Lo, other.Lo), max(r.Hi, other.Hi)}
}

// Clamp restricts the range to [0, h).
func (r Range) Clamp(h int) Range {
	lo := max(r.Lo, 0)
	hi := min(r.Hi, h)
	if hi < lo {
		return Range{lo, lo}
	}
	return Range{lo, hi}
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Equal splits h rows into p strips whose sizes differ by at most one row.
// When p exceeds h, trailing strips are empty. This is the paper's
// homogeneous partition ("the output feature map F is equivalently
// partitioned").
func Equal(h, p int) []Range {
	if p <= 0 {
		return nil
	}
	parts := make([]Range, p)
	base := h / p
	extra := h % p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < extra {
			size++
		}
		parts[i] = Range{lo, lo + size}
		lo += size
	}
	return parts
}

// Proportional splits h rows into strips whose sizes are as close as
// possible to proportional to the given non-negative weights. All rows are
// assigned; zero-weight entries receive empty strips when possible.
func Proportional(h int, weights []float64) []Range {
	p := len(weights)
	if p == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
	}
	if total == 0 {
		return Equal(h, p)
	}
	parts := make([]Range, p)
	lo := 0
	acc := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		acc += w
		hi := int(float64(h)*acc/total + 0.5)
		if i == p-1 {
			hi = h
		}
		if hi < lo {
			hi = lo
		}
		parts[i] = Range{lo, hi}
		lo = hi
	}
	return parts
}
