package partition

import (
	"fmt"

	"pico/internal/nn"
)

// This file extends the row-strip machinery to DeepThings-style 2D grid
// partitions (Zhao et al., the paper's [7]): the output feature map is cut
// into a rows x cols grid of tiles. Grids shrink each device's input region
// (the memory argument DeepThings makes) at the price of more overlap
// boundary, trading per-device footprint against total redundant work. The
// strip-vs-grid comparison is exposed as an ablation experiment; the
// runtime executes strips (as the paper's PICO does).

// Rect is a rectangular feature-map region.
type Rect struct {
	Rows, Cols Range
}

// Empty reports whether the rectangle covers no cells.
func (r Rect) Empty() bool { return r.Rows.Empty() || r.Cols.Empty() }

// Cells returns the number of covered feature-map positions.
func (r Rect) Cells() int { return r.Rows.Len() * r.Cols.Len() }

func (r Rect) String() string { return fmt.Sprintf("%vx%v", r.Rows, r.Cols) }

// FullRect covers an h x w feature map.
func FullRect(h, w int) Rect { return Rect{Rows: Full(h), Cols: Full(w)} }

// GridPartition splits an h x w map into a rows x cols grid whose tile
// extents differ by at most one in each axis, in row-major order.
func GridPartition(h, w, rows, cols int) []Rect {
	rr := Equal(h, rows)
	cc := Equal(w, cols)
	out := make([]Rect, 0, rows*cols)
	for _, r := range rr {
		for _, c := range cc {
			out = append(out, Rect{Rows: r, Cols: c})
		}
	}
	return out
}

// axisInRange back-propagates one axis of a conv/pool window.
func axisInRange(out Range, k, s, p, inExtent int, mode RFMode) Range {
	if out.Empty() {
		return Range{}
	}
	lo := out.Lo*s - p
	hi := (out.Hi-1)*s - p + k
	r := Range{lo, hi}
	if mode == Clamped {
		r = r.Clamp(inExtent)
	}
	return r
}

// layerInRect back-propagates an output rectangle through one layer.
func (c *Calc) layerInRect(l *nn.Layer, out Rect, in nn.Shape) Rect {
	if out.Empty() {
		return Rect{}
	}
	switch l.Kind {
	case nn.Conv, nn.MaxPool, nn.AvgPool:
		return Rect{
			Rows: axisInRange(out.Rows, l.KH, l.SH, l.PH, in.H, c.Mode),
			Cols: axisInRange(out.Cols, l.KW, l.SW, l.PW, in.W, c.Mode),
		}
	case nn.GlobalAvgPool, nn.FullyConnected:
		return FullRect(in.H, in.W)
	case nn.Block:
		var hull Rect
		for _, path := range l.Paths {
			r := c.pathInRect(path, out, in)
			hull.Rows = hull.Rows.Hull(r.Rows)
			hull.Cols = hull.Cols.Hull(r.Cols)
		}
		return hull
	default:
		panic(fmt.Sprintf("partition: unknown layer kind %v", l.Kind))
	}
}

// pathShapes returns the full shapes at each boundary of a block path.
func (c *Calc) pathShapes(path []nn.Layer, blockIn nn.Shape) []nn.Shape {
	shapes := make([]nn.Shape, len(path)+1)
	shapes[0] = blockIn
	for i := range path {
		next, err := path[i].OutShape(shapes[i])
		if err != nil {
			panic(fmt.Sprintf("partition: invalid block path layer %q: %v", path[i].Name, err))
		}
		shapes[i+1] = next
	}
	return shapes
}

func (c *Calc) pathInRect(path []nn.Layer, out Rect, blockIn nn.Shape) Rect {
	shapes := c.pathShapes(path, blockIn)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		r = c.layerInRect(&path[i], r, shapes[i])
	}
	return r
}

// SegmentRects back-propagates an output rectangle of segment [from, to)
// to every layer boundary; entry k is the required region at the input of
// layer from+k.
func (c *Calc) SegmentRects(from, to int, out Rect) []Rect {
	if from < 0 || to > len(c.M.Layers) || from >= to {
		panic(fmt.Sprintf("partition: invalid segment [%d,%d)", from, to))
	}
	shapes := c.M.Shapes()
	rects := make([]Rect, to-from+1)
	rects[to-from] = out
	r := out
	for i := to - 1; i >= from; i-- {
		r = c.layerInRect(&c.M.Layers[i], r, shapes[i])
		rects[i-from] = r
	}
	return rects
}

// cellFLOPs returns the MACs to produce one output cell of layer l.
func cellFLOPs(l *nn.Layer, in nn.Shape) int64 {
	switch l.Kind {
	case nn.Conv:
		g := int64(1)
		if l.Groups > 1 {
			g = int64(l.Groups)
		}
		return int64(l.KH) * int64(l.KW) * int64(in.C) / g * int64(l.OutC)
	default:
		return 0
	}
}

// layerRectFLOPs returns the MACs of one layer producing an output
// rectangle; blocks descend into paths.
func (c *Calc) layerRectFLOPs(l *nn.Layer, in nn.Shape, out Rect) int64 {
	if out.Empty() {
		return 0
	}
	switch l.Kind {
	case nn.Block:
		var sum int64
		for _, path := range l.Paths {
			sum += c.pathRectFLOPs(path, in, out)
		}
		return sum
	case nn.FullyConnected:
		return int64(in.Elems()) * int64(l.OutF)
	default:
		return cellFLOPs(l, in) * int64(out.Cells())
	}
}

func (c *Calc) pathRectFLOPs(path []nn.Layer, blockIn nn.Shape, out Rect) int64 {
	if len(path) == 0 {
		return 0
	}
	shapes := c.pathShapes(path, blockIn)
	needs := make([]Rect, len(path)+1)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		needs[i+1] = r
		r = c.layerInRect(&path[i], r, shapes[i])
	}
	var sum int64
	for i := range path {
		sum += c.layerRectFLOPs(&path[i], shapes[i], needs[i+1])
	}
	return sum
}

// SegmentRectFLOPs returns θ(M_{from→to}; F) for a rectangular output
// region — the 2D-grid analogue of SegmentRegionFLOPs.
func (c *Calc) SegmentRectFLOPs(from, to int, out Rect) int64 {
	rects := c.SegmentRects(from, to, out)
	var sum int64
	for i := from; i < to; i++ {
		sum += c.layerRectFLOPs(&c.M.Layers[i], c.M.InShape(i), rects[i-from+1])
	}
	return sum
}

// RectBytes returns φ(F) for a rectangular region at layer boundary idx.
func (c *Calc) RectBytes(idx int, r Rect) int64 {
	s := c.M.Shapes()[idx]
	rows, cols := r.Rows, r.Cols
	if c.Mode == Clamped {
		rows = rows.Clamp(s.H)
		cols = cols.Clamp(s.W)
	}
	return int64(rows.Len()) * int64(cols.Len()) * int64(s.C) * 4
}

// GridStats summarizes a grid (or strip) partition of a fused segment.
type GridStats struct {
	// TotalFLOPs is the work all tiles perform, Σ θ.
	TotalFLOPs float64
	// RedundantFLOPs is the portion computed more than once across tiles.
	RedundantFLOPs float64
	// MaxTileFLOPs is the heaviest tile's work (the bottleneck).
	MaxTileFLOPs float64
	// MaxInputBytes is the largest per-tile input region — DeepThings'
	// per-device memory-footprint metric.
	MaxInputBytes int64
}

// Ratio returns the redundant work fraction.
func (s *GridStats) Ratio() float64 {
	if s.TotalFLOPs == 0 {
		return 0
	}
	return s.RedundantFLOPs / s.TotalFLOPs
}

// GridStats evaluates a set of output tiles over segment [from, to):
// total/redundant/bottleneck FLOPs plus the worst-case input footprint.
// Multiplicity is counted exactly per feature-map cell with a 2D difference
// array per layer, so the cost is O(layers x (H x W + tiles)).
func (c *Calc) GridStats(from, to int, tiles []Rect) GridStats {
	var stats GridStats
	for _, tile := range tiles {
		if tile.Empty() {
			continue
		}
		f := float64(c.SegmentRectFLOPs(from, to, tile))
		stats.TotalFLOPs += f
		if f > stats.MaxTileFLOPs {
			stats.MaxTileFLOPs = f
		}
		if b := c.RectBytes(from, c.SegmentRects(from, to, tile)[0]); b > stats.MaxInputBytes {
			stats.MaxInputBytes = b
		}
	}
	// Unique (deduplicated) work per layer via multiplicity counting.
	shapes := c.M.Shapes()
	perTile := make([][]Rect, len(tiles))
	for ti, tile := range tiles {
		if tile.Empty() {
			continue
		}
		perTile[ti] = c.SegmentRects(from, to, tile)
	}
	var unique float64
	for i := from; i < to; i++ {
		l := &c.M.Layers[i]
		if l.Kind == nn.Block {
			unique += c.blockUniqueFLOPs(l, shapes[i], perTile, i-from+1)
			continue
		}
		per := float64(cellFLOPs(l, shapes[i]))
		if l.Kind == nn.FullyConnected {
			per = float64(int64(shapes[i].Elems()) * int64(l.OutF))
			// FC occupies a single 1x1 "cell".
		}
		if per == 0 {
			continue
		}
		out := c.M.OutShape(i)
		rects := make([]Rect, 0, len(tiles))
		for ti := range tiles {
			if perTile[ti] != nil {
				rects = append(rects, perTile[ti][i-from+1])
			}
		}
		unique += per * float64(coveredCells(rects, out.H, out.W))
	}
	stats.RedundantFLOPs = stats.TotalFLOPs - unique
	if stats.RedundantFLOPs < 0 {
		stats.RedundantFLOPs = 0
	}
	return stats
}

// blockUniqueFLOPs counts each block path layer's covered cells once.
func (c *Calc) blockUniqueFLOPs(blk *nn.Layer, blockIn nn.Shape, perTile [][]Rect, boundary int) float64 {
	var unique float64
	for _, path := range blk.Paths {
		if len(path) == 0 {
			continue
		}
		shapes := c.pathShapes(path, blockIn)
		// For each tile, the block output rect; back-prop within the path.
		needsPerTile := make([][]Rect, 0, len(perTile))
		for ti := range perTile {
			if perTile[ti] == nil {
				continue
			}
			out := perTile[ti][boundary]
			needs := make([]Rect, len(path)+1)
			r := out
			for i := len(path) - 1; i >= 0; i-- {
				needs[i+1] = r
				r = c.layerInRect(&path[i], r, shapes[i])
			}
			needsPerTile = append(needsPerTile, needs)
		}
		for i := range path {
			per := float64(cellFLOPs(&path[i], shapes[i]))
			if per == 0 {
				continue
			}
			rects := make([]Rect, 0, len(needsPerTile))
			for _, needs := range needsPerTile {
				rects = append(rects, needs[i+1])
			}
			unique += per * float64(coveredCells(rects, shapes[i+1].H, shapes[i+1].W))
		}
	}
	return unique
}

// coveredCells counts cells of an h x w map covered by at least one rect,
// using a 2D difference array.
func coveredCells(rects []Rect, h, w int) int {
	diff := make([]int, (h+1)*(w+1))
	idx := func(r, c int) int { return r*(w+1) + c }
	for _, rc := range rects {
		rows := rc.Rows.Clamp(h)
		cols := rc.Cols.Clamp(w)
		if rows.Empty() || cols.Empty() {
			continue
		}
		diff[idx(rows.Lo, cols.Lo)]++
		diff[idx(rows.Lo, cols.Hi)]--
		diff[idx(rows.Hi, cols.Lo)]--
		diff[idx(rows.Hi, cols.Hi)]++
	}
	covered := 0
	rowAcc := make([]int, w+1)
	for r := 0; r < h; r++ {
		for col := 0; col < w; col++ {
			rowAcc[col] += diff[idx(r, col)]
		}
		acc := 0
		for col := 0; col < w; col++ {
			acc += rowAcc[col]
			if acc > 0 {
				covered++
			}
		}
	}
	return covered
}

// PathRects back-propagates an output rectangle through one block path; the
// result has len(path)+1 entries, entry 0 being the needed block-input
// region. The 2D analogue of PathRanges, used by the tensor engine's grid
// execution.
func (c *Calc) PathRects(path []nn.Layer, out Rect, blockIn nn.Shape) []Rect {
	shapes := c.pathShapes(path, blockIn)
	needs := make([]Rect, len(path)+1)
	r := out
	for i := len(path) - 1; i >= 0; i-- {
		needs[i+1] = r
		r = c.layerInRect(&path[i], r, shapes[i])
	}
	needs[0] = r
	return needs
}
