package partition

import (
	"fmt"

	"pico/internal/nn"
)

// RedundancyStats quantifies overlap-induced recomputation when the devices
// of one stage each produce a strip of segment [from, to).
//
// For every atomic layer (descending into block paths) and every output row,
// the row's FLOPs are counted once per device that computes it; with
// multiplicity m, (m-1) copies are redundant. Redundant work is attributed
// to the computing devices in equal shares, giving the per-device redundancy
// ratios of the paper's Table I.
type RedundancyStats struct {
	// TotalFLOPs is the work actually performed, Σ_k θ(M; F^k).
	TotalFLOPs float64
	// RedundantFLOPs is the portion computed more than once.
	RedundantFLOPs float64
	// PerDeviceFLOPs is each device's performed work.
	PerDeviceFLOPs []float64
	// PerDeviceRedundant is each device's attributed redundant work.
	PerDeviceRedundant []float64
}

// Ratio returns the global redundancy ratio (0 when no work is performed).
func (s *RedundancyStats) Ratio() float64 {
	if s.TotalFLOPs == 0 {
		return 0
	}
	return s.RedundantFLOPs / s.TotalFLOPs
}

// DeviceRatio returns device k's redundancy ratio.
func (s *RedundancyStats) DeviceRatio(k int) float64 {
	if s.PerDeviceFLOPs[k] == 0 {
		return 0
	}
	return s.PerDeviceRedundant[k] / s.PerDeviceFLOPs[k]
}

// layerOccupancy is one atomic layer's per-device computed output rows.
type layerOccupancy struct {
	perRow float64 // MACs per output row
	outH   int
	ranges []Range // one per device
}

// Redundancy computes overlap statistics for the given per-device output
// strips of segment [from, to). len(parts) is the device count; empty ranges
// denote idle devices.
func (c *Calc) Redundancy(from, to int, parts []Range) RedundancyStats {
	occ := c.collectOccupancy(from, to, parts)
	n := len(parts)
	stats := RedundancyStats{
		PerDeviceFLOPs:     make([]float64, n),
		PerDeviceRedundant: make([]float64, n),
	}
	for _, lo := range occ {
		if lo.perRow == 0 {
			continue
		}
		for row := 0; row < lo.outH; row++ {
			var owners []int
			for k, r := range lo.ranges {
				if row >= r.Lo && row < r.Hi {
					owners = append(owners, k)
				}
			}
			m := len(owners)
			if m == 0 {
				continue
			}
			stats.TotalFLOPs += lo.perRow * float64(m)
			for _, k := range owners {
				stats.PerDeviceFLOPs[k] += lo.perRow
			}
			if m > 1 {
				red := lo.perRow * float64(m-1)
				stats.RedundantFLOPs += red
				share := red / float64(m)
				for _, k := range owners {
					stats.PerDeviceRedundant[k] += share
				}
			}
		}
	}
	return stats
}

// collectOccupancy walks every atomic layer in [from, to) and records the
// output rows each device computes, descending into block paths.
func (c *Calc) collectOccupancy(from, to int, parts []Range) []layerOccupancy {
	n := len(parts)
	// Per-device boundary ranges through the chain.
	perDevice := make([][]Range, n)
	for k, p := range parts {
		perDevice[k] = c.SegmentRanges(from, to, p)
	}
	var occ []layerOccupancy
	shapes := c.M.Shapes()
	for i := from; i < to; i++ {
		l := &c.M.Layers[i]
		outRanges := make([]Range, n)
		for k := range parts {
			outRanges[k] = perDevice[k][i-from+1]
		}
		if l.Kind == nn.Block {
			occ = append(occ, c.blockOccupancy(l, shapes[i], outRanges)...)
			continue
		}
		occ = append(occ, layerOccupancy{
			perRow: float64(rowFLOPs(l, shapes[i], shapes[i+1])),
			outH:   c.M.OutShape(i).H,
			ranges: outRanges,
		})
	}
	return occ
}

// blockOccupancy expands a block into its path layers, back-propagating each
// device's block-output range through every path.
func (c *Calc) blockOccupancy(blk *nn.Layer, blockIn nn.Shape, outRanges []Range) []layerOccupancy {
	n := len(outRanges)
	var occ []layerOccupancy
	for _, path := range blk.Paths {
		if len(path) == 0 {
			continue // identity shortcut performs no work
		}
		shapes := make([]nn.Shape, len(path)+1)
		shapes[0] = blockIn
		for i := range path {
			next, err := path[i].OutShape(shapes[i])
			if err != nil {
				panic(fmt.Sprintf("partition: invalid block path layer %q: %v", path[i].Name, err))
			}
			shapes[i+1] = next
		}
		// Per-device needed output rows of each path layer.
		needs := make([][]Range, n) // needs[k][i] = output rows of path[i]
		for k, out := range outRanges {
			needs[k] = make([]Range, len(path)+1)
			r := out
			for i := len(path) - 1; i >= 0; i-- {
				needs[k][i+1] = r
				r = c.layerInRange(&path[i], r, shapes[i].H)
			}
		}
		for i := range path {
			if path[i].Kind == nn.Block {
				// Nested blocks are not produced by any builder; guard
				// explicitly rather than mis-account silently.
				panic("partition: nested blocks are not supported")
			}
			ranges := make([]Range, n)
			for k := range outRanges {
				ranges[k] = needs[k][i+1]
			}
			occ = append(occ, layerOccupancy{
				perRow: float64(rowFLOPs(&path[i], shapes[i], shapes[i+1])),
				outH:   shapes[i+1].H,
				ranges: ranges,
			})
		}
	}
	return occ
}
