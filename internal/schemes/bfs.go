package schemes

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
)

// ErrBudgetExceeded is returned when the exhaustive search runs past its
// time budget — the analogue of the paper's "> 1h" Table II entries.
var ErrBudgetExceeded = errors.New("schemes: BFS search budget exceeded")

// BFSOptions configure the exhaustive optimal search.
type BFSOptions struct {
	// Budget bounds the wall-clock search time; zero means unlimited.
	Budget time.Duration
}

// BFSOptimal exhaustively searches every pipeline configuration — all
// contiguous layer segmentations crossed with all assignments of device
// subsets to stages — and returns the minimum-period plan. Within each
// candidate stage the output strips are capacity-balanced, so the result is
// the optimum the paper's BFS baseline approximates (Table II, Fig. 13).
//
// The state space is exponential in the device count, which is the point:
// PICO's heuristic must get close to this optimum at a vanishing fraction of
// its cost. Clusters beyond 16 devices are rejected outright.
func BFSOptimal(m *nn.Model, c *cluster.Cluster, opts BFSOptions) (*core.Plan, error) {
	ec, err := newEvalContext(m, c)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 0 {
		return nil, errNoDevices
	}
	if n > 16 {
		return nil, fmt.Errorf("schemes: BFS on %d devices is intractable (max 16)", n)
	}
	L := m.NumLayers()
	full := 1<<uint(n) - 1

	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}
	evals := 0
	checkBudget := func() error {
		evals++
		if evals%256 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return ErrBudgetExceeded
		}
		return nil
	}

	// Stage cost cache over (from, to, subset).
	type stageKey struct {
		from, to, subset int
	}
	type stageVal struct {
		cost  float64
		parts []partition.Range
		idx   []int
	}
	stageCache := make(map[stageKey]stageVal)
	stageCost := func(from, to, subset int) (stageVal, error) {
		key := stageKey{from, to, subset}
		if v, ok := stageCache[key]; ok {
			return v, nil
		}
		if err := checkBudget(); err != nil {
			return stageVal{}, err
		}
		var idx []int
		for d := 0; d < n; d++ {
			if subset&(1<<uint(d)) != 0 {
				idx = append(idx, d)
			}
		}
		speeds := ec.cm.DeviceSpeeds(idx)
		parts := ec.cm.Calc.Balanced(from, to, speeds)
		cost, _, _ := ec.cm.StageCost(from, to, speeds, parts)
		v := stageVal{cost: cost, parts: parts, idx: idx}
		stageCache[key] = v
		return v, nil
	}

	// Search over (from, available-device mask) states.
	type searchKey struct {
		from, mask int
	}
	type searchVal struct {
		period  float64
		to      int
		subset  int
		visited bool
	}
	memo := make(map[searchKey]searchVal)
	var solve func(from, mask int) (searchVal, error)
	solve = func(from, mask int) (searchVal, error) {
		if from == L {
			return searchVal{period: 0, visited: true}, nil
		}
		key := searchKey{from, mask}
		if v, ok := memo[key]; ok {
			return v, nil
		}
		best := searchVal{period: math.Inf(1), visited: true}
		if mask == 0 {
			memo[key] = best
			return best, nil
		}
		for to := from + 1; to <= L; to++ {
			// Enumerate non-empty submasks of mask.
			for sub := mask; sub > 0; sub = (sub - 1) & mask {
				sv, err := stageCost(from, to, sub)
				if err != nil {
					return searchVal{}, err
				}
				if sv.cost >= best.period {
					continue // cannot improve the bottleneck
				}
				rest, err := solve(to, mask&^sub)
				if err != nil {
					return searchVal{}, err
				}
				period := math.Max(sv.cost, rest.period)
				if period < best.period {
					best = searchVal{period: period, to: to, subset: sub, visited: true}
				}
			}
		}
		memo[key] = best
		return best, nil
	}

	root, err := solve(0, full)
	if err != nil {
		return nil, err
	}
	if math.IsInf(root.period, 1) {
		return nil, fmt.Errorf("schemes: BFS found no feasible pipeline")
	}

	// Reconstruct the plan.
	plan := &core.Plan{Model: m, Cluster: c}
	from, mask := 0, full
	for from < L {
		v := memo[searchKey{from, mask}]
		sv, err := stageCost(from, v.to, v.subset)
		if err != nil {
			return nil, err
		}
		plan.Stages = append(plan.Stages, core.Stage{
			From: from, To: v.to,
			DeviceIdx: sv.idx,
			Parts:     sv.parts,
		})
		mask &^= v.subset
		from = v.to
	}
	recomputePlan(ec, plan)
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("schemes: BFS produced invalid plan: %w", err)
	}
	return plan, nil
}

// recomputePlan refreshes stage costs and the period/latency aggregates of
// an externally constructed plan.
func recomputePlan(ec *evalContext, plan *core.Plan) {
	plan.PeriodSeconds = 0
	plan.LatencySeconds = 0
	for i := range plan.Stages {
		st := &plan.Stages[i]
		speeds := ec.cm.DeviceSpeeds(st.DeviceIdx)
		total, comp, _ := ec.cm.StageCost(st.From, st.To, speeds, st.Parts)
		st.CompSeconds = comp
		st.CommSeconds = total - comp
		t := st.Seconds()
		plan.LatencySeconds += t
		if t > plan.PeriodSeconds {
			plan.PeriodSeconds = t
		}
	}
}
