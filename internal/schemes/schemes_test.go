package schemes

import (
	"errors"
	"math"
	"testing"
	"time"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/simulate"
)

func TestLayerWiseStructure(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	lw, err := LayerWise(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	// One segment per layer.
	if got, want := len(lw.Segments), m.NumLayers(); got != want {
		t.Fatalf("segments = %d, want %d", got, want)
	}
	for i, seg := range lw.Segments {
		if seg.From != i || seg.To != i+1 {
			t.Fatalf("segment %d covers [%d,%d)", i, seg.From, seg.To)
		}
	}
	// The fc layers must run on a single device.
	for _, seg := range lw.Segments[18:] {
		if len(seg.DeviceIdx) != 1 {
			t.Fatalf("fc segment on %d devices", len(seg.DeviceIdx))
		}
	}
	// Per-layer splitting computes each output row once: no redundancy.
	if r := lw.RedundancyRatio(); r != 0 {
		t.Fatalf("LW redundancy = %v, want 0", r)
	}
	if lw.Seconds <= 0 {
		t.Fatal("non-positive LW time")
	}
}

func TestLayerWiseIsCommunicationBound(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	lw, err := LayerWise(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	// With 1000x the bandwidth LW collapses to near pure compute: the
	// paper's premise that LW is killed by per-layer communication.
	fat := cluster.Homogeneous(8, 600e6)
	fat.BandwidthBps = cl.BandwidthBps * 1000
	lwFat, err := LayerWise(m, fat)
	if err != nil {
		t.Fatal(err)
	}
	if lw.Seconds < 3*lwFat.Seconds {
		t.Fatalf("LW on WiFi %.2fs vs infinite bandwidth %.2fs: not communication bound", lw.Seconds, lwFat.Seconds)
	}
}

func TestDefaultFusedPrefix(t *testing.T) {
	vgg := nn.VGG16()
	// On 8 devices: deepest pool with >= 8 output rows is pool4 (14x14),
	// layer index 13, so the prefix is 14.
	if got := DefaultFusedPrefix(vgg, 8); got != 14 {
		t.Fatalf("VGG16 prefix = %d, want 14", got)
	}
	yolo := nn.YOLOv2()
	// YOLOv2's pool5 outputs 14x14 >= 8 rows: prefix 18 — DeepThings'
	// early-layer fusion covering the backbone ahead of the head.
	if got := DefaultFusedPrefix(yolo, 8); got != 18 {
		t.Fatalf("YOLOv2 prefix = %d, want 18", got)
	}
	// A pool-free toy model falls back to the 2/3 rule.
	toy := nn.ToyChain("t", 6, 0, 8, 32)
	if got := DefaultFusedPrefix(toy, 4); got != 4 {
		t.Fatalf("toy prefix = %d, want 4", got)
	}
}

func TestEarlyFusedLayer(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	efl, err := EarlyFusedLayer(m, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(efl.Segments) != 2 {
		t.Fatalf("EFL must have exactly 2 segments, got %d", len(efl.Segments))
	}
	if got := len(efl.Segments[1].DeviceIdx); got != 1 {
		t.Fatalf("EFL tail on %d devices, want 1", got)
	}
	// Fusing deep across 8 devices must produce substantial redundancy.
	if r := efl.RedundancyRatio(); r < 0.1 {
		t.Fatalf("EFL redundancy = %.3f, want > 0.1", r)
	}
	// Invalid prefixes.
	if _, err := EarlyFusedLayer(m, cl, m.NumLayers()); err == nil {
		t.Fatal("full-model prefix accepted")
	}
	if _, err := EarlyFusedLayer(m, cl, 20); err == nil {
		t.Fatal("prefix crossing fc accepted")
	}
}

func TestOptimalFusedLayerBeatsEFL(t *testing.T) {
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		for _, cl := range []*cluster.Cluster{cluster.Homogeneous(8, 600e6), cluster.PaperHeterogeneous()} {
			efl, err := EarlyFusedLayer(m, cl, 0)
			if err != nil {
				t.Fatal(err)
			}
			ofl, err := OptimalFusedLayer(m, cl, OFLOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if ofl.Seconds > efl.Seconds+1e-9 {
				t.Fatalf("%s: OFL %.3fs worse than EFL %.3fs", m.Name, ofl.Seconds, efl.Seconds)
			}
			if len(ofl.Segments) < 2 {
				t.Fatalf("%s: OFL found only %d segments", m.Name, len(ofl.Segments))
			}
		}
	}
}

func TestOFLSegmentsAreContiguous(t *testing.T) {
	m := nn.YOLOv2()
	cl := cluster.Homogeneous(8, 600e6)
	ofl, err := OptimalFusedLayer(m, cl, OFLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	for _, seg := range ofl.Segments {
		if seg.From != at {
			t.Fatalf("segment starts at %d, want %d", seg.From, at)
		}
		at = seg.To
	}
	if at != m.NumLayers() {
		t.Fatalf("segments end at %d, want %d", at, m.NumLayers())
	}
}

func TestOFLCapacityAwareNotWorse(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	plain, err := OptimalFusedLayer(m, cl, OFLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := OptimalFusedLayer(m, cl, OFLOptions{CapacityAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Seconds > plain.Seconds*1.001 {
		t.Fatalf("capacity-aware OFL %.3fs worse than plain %.3fs", aware.Seconds, plain.Seconds)
	}
}

func TestSchemeOrderingMatchesPaper(t *testing.T) {
	// Fig. 8/9 shape: LW slowest by far, then EFL, then OFL, and the PICO
	// pipeline period beats them all.
	for _, m := range []*nn.Model{nn.VGG16(), nn.YOLOv2()} {
		cl := cluster.Homogeneous(8, 600e6)
		lw, err := LayerWise(m, cl)
		if err != nil {
			t.Fatal(err)
		}
		efl, err := EarlyFusedLayer(m, cl, 0)
		if err != nil {
			t.Fatal(err)
		}
		ofl, err := OptimalFusedLayer(m, cl, OFLOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pico, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !(lw.Seconds > efl.Seconds && efl.Seconds > ofl.Seconds && ofl.Seconds > pico.PeriodSeconds) {
			t.Fatalf("%s ordering broken: LW %.2f EFL %.2f OFL %.2f PICO %.2f",
				m.Name, lw.Seconds, efl.Seconds, ofl.Seconds, pico.PeriodSeconds)
		}
	}
}

func TestRedundancyOrderingMatchesTable1(t *testing.T) {
	// Table I shape: redundancy LW < PICO < OFL < EFL.
	m := nn.YOLOv2()
	cl := cluster.PaperHeterogeneous()
	lw, err := LayerWise(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	efl, err := EarlyFusedLayer(m, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	ofl, err := OptimalFusedLayer(m, cl, OFLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pico, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cm := core.NewCostModel(m, cl)
	picoRed := pico.Stats(cm).RedundancyRatio()
	if !(lw.RedundancyRatio() <= picoRed && picoRed < ofl.RedundancyRatio() && ofl.RedundancyRatio() < efl.RedundancyRatio()) {
		t.Fatalf("redundancy ordering broken: LW %.3f PICO %.3f OFL %.3f EFL %.3f",
			lw.RedundancyRatio(), picoRed, ofl.RedundancyRatio(), efl.RedundancyRatio())
	}
}

func TestOneStageProfile(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(4, 600e6)
	efl, err := EarlyFusedLayer(m, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof := efl.Profile()
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Stages) != 1 {
		t.Fatalf("one-stage profile has %d stages", len(prof.Stages))
	}
	if math.Abs(prof.Period()-efl.Seconds) > 1e-12 || math.Abs(prof.Latency()-efl.Seconds) > 1e-12 {
		t.Fatal("one-stage period/latency must equal the inference time")
	}
	// Closed-loop throughput equals 1/Seconds.
	res, err := simulate.RunClosedLoop(prof, 50, cl.Size())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(1/res.Throughput()-efl.Seconds) > 0.05*efl.Seconds {
		t.Fatalf("closed-loop period %.3f, want %.3f", 1/res.Throughput(), efl.Seconds)
	}
}

func TestBFSOptimalMatchesPlannerBound(t *testing.T) {
	toy := nn.Fig13Toy()
	cl := cluster.Fig13Heterogeneous()
	bfs, err := BFSOptimal(toy, cl, BFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bfs.Validate(); err != nil {
		t.Fatalf("invalid BFS plan: %v", err)
	}
	pico, err := core.PlanPipeline(toy, cl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// BFS is the optimum: PICO cannot beat it, and the heuristic gap the
	// paper accepts (Fig. 13) is small.
	if pico.PeriodSeconds < bfs.PeriodSeconds-1e-9 {
		t.Fatalf("PICO %.6f beats 'optimal' BFS %.6f", pico.PeriodSeconds, bfs.PeriodSeconds)
	}
	if pico.PeriodSeconds > bfs.PeriodSeconds*1.25 {
		t.Fatalf("PICO gap too large: %.6f vs %.6f", pico.PeriodSeconds, bfs.PeriodSeconds)
	}
}

func TestBFSBudget(t *testing.T) {
	// A large search with a microscopic budget must abort cleanly.
	m := nn.ToyChain("t12", 12, 4, 24, 64)
	cl := cluster.Homogeneous(8, 600e6)
	_, err := BFSOptimal(m, cl, BFSOptions{Budget: time.Microsecond})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestBFSRejectsHugeClusters(t *testing.T) {
	m := nn.Fig13Toy()
	cl := cluster.Homogeneous(17, 600e6)
	if _, err := BFSOptimal(m, cl, BFSOptions{}); err == nil {
		t.Fatal("17-device BFS accepted")
	}
}

func TestSchemesRejectInvalidInputs(t *testing.T) {
	bad := &nn.Model{Name: "bad"}
	cl := cluster.Homogeneous(2, 600e6)
	if _, err := LayerWise(bad, cl); err == nil {
		t.Fatal("LW accepted invalid model")
	}
	if _, err := EarlyFusedLayer(bad, cl, 0); err == nil {
		t.Fatal("EFL accepted invalid model")
	}
	if _, err := OptimalFusedLayer(bad, cl, OFLOptions{}); err == nil {
		t.Fatal("OFL accepted invalid model")
	}
	if _, err := BFSOptimal(bad, cl, BFSOptions{}); err == nil {
		t.Fatal("BFS accepted invalid model")
	}
	good := nn.Fig13Toy()
	badCl := &cluster.Cluster{}
	if _, err := LayerWise(good, badCl); err == nil {
		t.Fatal("LW accepted invalid cluster")
	}
}

func TestGraphModelSchemes(t *testing.T) {
	// Baselines must handle block-structured models too.
	m := nn.ResNet34()
	cl := cluster.Homogeneous(8, 600e6)
	lw, err := LayerWise(m, cl)
	if err != nil {
		t.Fatal(err)
	}
	ofl, err := OptimalFusedLayer(m, cl, OFLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(lw.Seconds > ofl.Seconds) {
		t.Fatalf("resnet34: LW %.2f <= OFL %.2f", lw.Seconds, ofl.Seconds)
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 6: {3, 2}, 8: {4, 2}, 9: {3, 3}, 7: {7, 1}}
	for n, want := range cases {
		r, c := GridShape(n)
		if r != want[0] || c != want[1] {
			t.Fatalf("GridShape(%d) = %dx%d, want %dx%d", n, r, c, want[0], want[1])
		}
		if r*c != n && n >= 1 {
			t.Fatalf("GridShape(%d) does not cover n", n)
		}
	}
}

func TestEarlyFusedLayerGrid(t *testing.T) {
	m := nn.VGG16()
	cl := cluster.Homogeneous(8, 600e6)
	strips, err := EarlyFusedLayer(m, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := GridShape(cl.Size())
	grid, err := EarlyFusedLayerGrid(m, cl, 0, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Seconds <= 0 {
		t.Fatal("non-positive grid EFL time")
	}
	// DeepThings' point: at 8 tiles the 4x2 grid wastes less work than 8
	// skinny strips, so the grid variant must not be slower (and its
	// redundancy must be lower).
	if grid.Seconds > strips.Seconds*1.02 {
		t.Fatalf("grid EFL %.3fs slower than strip EFL %.3fs", grid.Seconds, strips.Seconds)
	}
	if grid.RedundancyRatio() >= strips.RedundancyRatio() {
		t.Fatalf("grid redundancy %.3f >= strips %.3f", grid.RedundancyRatio(), strips.RedundancyRatio())
	}
	// Profile reduction works.
	if err := grid.Profile().Validate(); err != nil {
		t.Fatal(err)
	}
	// Mismatched grid rejected.
	if _, err := EarlyFusedLayerGrid(m, cl, 0, 3, 2); err == nil {
		t.Fatal("3x2 grid for 8 devices accepted")
	}
}

func TestMeDNNBeatsLWOnHeterogeneous(t *testing.T) {
	m := nn.VGG16()
	het := cluster.PaperHeterogeneous()
	lw, err := LayerWise(m, het)
	if err != nil {
		t.Fatal(err)
	}
	mednn, err := MeDNN(m, het)
	if err != nil {
		t.Fatal(err)
	}
	// MeDNN's capacity-aware strips shorten each layer's bottleneck.
	if mednn.Seconds >= lw.Seconds {
		t.Fatalf("MeDNN %.3fs not faster than LW %.3fs on the heterogeneous cluster",
			mednn.Seconds, lw.Seconds)
	}
	// On a homogeneous cluster the two must be within a hair (the
	// balancer may shave boundary rows differently).
	hom := cluster.Homogeneous(8, 600e6)
	lwHom, err := LayerWise(m, hom)
	if err != nil {
		t.Fatal(err)
	}
	mednnHom, err := MeDNN(m, hom)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mednnHom.Seconds/lwHom.Seconds - 1; diff > 0.02 || diff < -0.02 {
		t.Fatalf("homogeneous MeDNN %.3fs vs LW %.3fs differ by %.1f%%",
			mednnHom.Seconds, lwHom.Seconds, diff*100)
	}
	if mednn.RedundancyRatio() != 0 {
		t.Fatalf("per-layer MeDNN redundancy = %v, want 0", mednn.RedundancyRatio())
	}
}
