package schemes

import (
	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// LayerWise evaluates the MoDNN-style layer-wise scheme: every layer's
// output feature map is split equally across all devices, with a
// scatter/gather communication round per layer. Layers that cannot be
// spatially partitioned (fully connected, global pooling) run on the
// fastest device.
//
// Partitioning is capacity-unaware (equal tiles), matching the baseline
// behaviour visible in the paper's Table I, where the slow devices of the
// heterogeneous cluster saturate first. For the capacity-aware successor
// see MeDNN.
func LayerWise(m *nn.Model, c *cluster.Cluster) (*OneStage, error) {
	return layerWise(m, c, false, "LW")
}

// MeDNN evaluates the MeDNN scheme (Mao et al., the paper's [26]): MoDNN's
// per-layer partitioning with strips sized to each device's capacity, the
// adaptive partition that work contributed for heterogeneous clusters. On a
// homogeneous cluster it coincides with LayerWise.
func MeDNN(m *nn.Model, c *cluster.Cluster) (*OneStage, error) {
	return layerWise(m, c, true, "MeDNN")
}

func layerWise(m *nn.Model, c *cluster.Cluster, capacityAware bool, name string) (*OneStage, error) {
	ec, err := newEvalContext(m, c)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 0 {
		return nil, errNoDevices
	}
	out := newOneStage(name, n)
	fastest := fastestDevice(c)
	allIdx := allDeviceIdx(n)
	speeds := ec.cm.DeviceSpeeds(allIdx)
	for i := 0; i < m.NumLayers(); i++ {
		outH := m.OutShape(i).H
		if m.Layers[i].NeedsFullInput() || outH < 2 {
			ec.accumulateSegment(out, i, i+1, []int{fastest}, []partition.Range{partition.Full(outH)})
			continue
		}
		parts := partition.Equal(outH, n)
		if capacityAware {
			parts = ec.cm.Calc.Balanced(i, i+1, speeds)
		}
		ec.accumulateSegment(out, i, i+1, allIdx, parts)
	}
	return out, nil
}
