// Package schemes implements the parallelization baselines the paper
// compares PICO against (§V-A):
//
//   - Layer-Wise (LW): MoDNN-style per-layer feature-map partitioning with a
//     scatter/gather round per layer.
//   - Early-Fused-Layer (EFL): DeepThings-style fusion of the early
//     convolution layers across all devices, with the remaining layers on a
//     single device.
//   - Optimal-Fused-Layer (OFL): AOFL-style dynamic programming that cuts
//     the model into fused segments, each executed by the whole cluster.
//   - BFS: the exhaustive optimal pipeline search used as the upper bound in
//     Table II and Fig. 13.
//
// LW, EFL and OFL are one-stage schemes: the whole cluster serves one task
// at a time, so their pipeline period equals their latency.
package schemes

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/simulate"
)

// SegmentExec records one fused segment of a one-stage scheme: the layer
// range, the devices executing it and their output strips.
type SegmentExec struct {
	From, To  int
	DeviceIdx []int
	Parts     []partition.Range
	// Seconds is the segment's compute-plus-communication time.
	Seconds float64
}

// OneStage is the evaluated execution of a one-stage scheme on one task.
type OneStage struct {
	// Name identifies the scheme ("LW", "EFL", "OFL").
	Name string
	// Seconds is the full inference time — both the scheme's period and
	// its latency.
	Seconds float64
	// Segments are the scheme's fused segments in execution order.
	Segments []SegmentExec
	// DeviceBusySeconds / DeviceFLOPs / DeviceRedundant are per-device
	// totals for one task, indexed by cluster device.
	DeviceBusySeconds []float64
	DeviceFLOPs       []float64
	DeviceRedundant   []float64
}

// Profile reduces the scheme to a single-stage simulator profile.
func (o *OneStage) Profile() *simulate.ExecProfile {
	busy := make(map[int]float64, len(o.DeviceBusySeconds))
	for di, b := range o.DeviceBusySeconds {
		if b > 0 {
			busy[di] = b
		}
	}
	return &simulate.ExecProfile{
		Name:            o.Name,
		Stages:          []simulate.StageProfile{{Seconds: o.Seconds, DeviceBusy: busy}},
		DeviceFLOPs:     o.DeviceFLOPs,
		DeviceRedundant: o.DeviceRedundant,
	}
}

// RedundancyRatio returns the cluster-wide redundant work fraction.
func (o *OneStage) RedundancyRatio() float64 {
	var total, red float64
	for k := range o.DeviceFLOPs {
		total += o.DeviceFLOPs[k]
		red += o.DeviceRedundant[k]
	}
	if total == 0 {
		return 0
	}
	return red / total
}

// evalContext bundles what every baseline needs.
type evalContext struct {
	m  *nn.Model
	c  *cluster.Cluster
	cm *core.CostModel
}

func newEvalContext(m *nn.Model, c *cluster.Cluster) (*evalContext, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &evalContext{m: m, c: c, cm: core.NewCostModel(m, c)}, nil
}

// allDeviceIdx returns [0, 1, ..., n).
func allDeviceIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// fastestDevice returns the index of the fastest device.
func fastestDevice(c *cluster.Cluster) int {
	return c.SortedBySpeed()[0]
}

// accumulateSegment adds one segment's busy/FLOPs/redundancy into the
// result and returns the segment time.
func (ec *evalContext) accumulateSegment(out *OneStage, from, to int, deviceIdx []int, parts []partition.Range) float64 {
	speeds := ec.cm.DeviceSpeeds(deviceIdx)
	total, _, _ := ec.cm.StageCost(from, to, speeds, parts)
	red := ec.cm.Calc.Redundancy(from, to, parts)
	for k, di := range deviceIdx {
		out.DeviceFLOPs[di] += red.PerDeviceFLOPs[k]
		out.DeviceRedundant[di] += red.PerDeviceRedundant[k]
		if speeds[k] > 0 {
			out.DeviceBusySeconds[di] += red.PerDeviceFLOPs[k] / speeds[k]
		}
	}
	out.Segments = append(out.Segments, SegmentExec{
		From: from, To: to,
		DeviceIdx: deviceIdx,
		Parts:     parts,
		Seconds:   total,
	})
	out.Seconds += total
	return total
}

func newOneStage(name string, numDevices int) *OneStage {
	return &OneStage{
		Name:              name,
		DeviceBusySeconds: make([]float64, numDevices),
		DeviceFLOPs:       make([]float64, numDevices),
		DeviceRedundant:   make([]float64, numDevices),
	}
}

var errNoDevices = fmt.Errorf("schemes: cluster has no devices")
