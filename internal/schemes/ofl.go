package schemes

import (
	"math"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// OFLOptions configure the Optimal-Fused-Layer baseline.
type OFLOptions struct {
	// CapacityAware balances segment strips by device speed instead of
	// splitting equally. The paper's OFL baseline is capacity-unaware
	// (Table I shows its slow devices saturating first); the aware variant
	// is provided for ablations.
	CapacityAware bool
}

// OptimalFusedLayer evaluates the AOFL-style scheme: a dynamic program cuts
// the model into consecutive fused segments, each executed across the whole
// cluster with a gather/scatter between segments, minimising the total
// inference time. Segments containing layers that need the full input run
// on the fastest single device.
func OptimalFusedLayer(m *nn.Model, c *cluster.Cluster, opts OFLOptions) (*OneStage, error) {
	ec, err := newEvalContext(m, c)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 0 {
		return nil, errNoDevices
	}
	L := m.NumLayers()

	// segCost[i][j] is the cost of fused segment [i, j) across the cluster.
	type segPlan struct {
		cost      float64
		deviceIdx []int
		parts     []partition.Range
	}
	plans := make(map[[2]int]segPlan, L*(L+1)/2)
	fastest := fastestDevice(c)
	allIdx := allDeviceIdx(n)
	allSpeeds := ec.cm.DeviceSpeeds(allIdx)
	segment := func(i, j int) segPlan {
		key := [2]int{i, j}
		if sp, ok := plans[key]; ok {
			return sp
		}
		outH := m.OutShape(j - 1).H
		var sp segPlan
		needsFull := false
		for l := i; l < j; l++ {
			if m.Layers[l].NeedsFullInput() {
				needsFull = true
				break
			}
		}
		if needsFull || outH < 2 {
			sp.deviceIdx = []int{fastest}
			sp.parts = []partition.Range{partition.Full(outH)}
			speeds := ec.cm.DeviceSpeeds(sp.deviceIdx)
			sp.cost, _, _ = ec.cm.StageCost(i, j, speeds, sp.parts)
		} else {
			sp.deviceIdx = allIdx
			if opts.CapacityAware {
				sp.parts = ec.cm.Calc.Balanced(i, j, allSpeeds)
			} else {
				sp.parts = partition.Equal(outH, n)
			}
			sp.cost, _, _ = ec.cm.StageCost(i, j, allSpeeds, sp.parts)
		}
		plans[key] = sp
		return sp
	}

	// DP over cut points: best[j] = min_i best[i] + segCost(i, j).
	best := make([]float64, L+1)
	cut := make([]int, L+1)
	for j := 1; j <= L; j++ {
		best[j] = math.Inf(1)
		for i := 0; i < j; i++ {
			if t := best[i] + segment(i, j).cost; t < best[j] {
				best[j] = t
				cut[j] = i
			}
		}
	}

	// Reconstruct segments.
	var bounds [][2]int
	for j := L; j > 0; j = cut[j] {
		bounds = append(bounds, [2]int{cut[j], j})
	}
	out := newOneStage("OFL", n)
	for k := len(bounds) - 1; k >= 0; k-- {
		sp := segment(bounds[k][0], bounds[k][1])
		ec.accumulateSegment(out, bounds[k][0], bounds[k][1], sp.deviceIdx, sp.parts)
	}
	return out, nil
}
