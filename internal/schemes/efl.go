package schemes

import (
	"fmt"

	"pico/internal/cluster"
	"pico/internal/nn"
	"pico/internal/partition"
)

// DefaultFusedPrefix returns the layer count the Early-Fused-Layer baseline
// fuses: everything up to and including the deepest pooling layer whose
// output feature map still gives every device at least one row to produce
// (a grid-partitionable fused block, the DeepThings configuration — for
// YOLOv2 on 8 devices this covers the backbone through its fifth pool,
// matching DeepThings' early-layer fusion ahead of the detection head).
// Models without such a pool fuse the first two thirds of their layers.
func DefaultFusedPrefix(m *nn.Model, devices int) int {
	if devices < 1 {
		devices = 1
	}
	best := 0
	for i := range m.Layers {
		switch m.Layers[i].Kind {
		case nn.MaxPool, nn.AvgPool:
			if m.OutShape(i).H >= devices {
				best = i + 1
			}
		}
	}
	if best > 0 && best < m.NumLayers() {
		return best
	}
	f := (m.NumLayers()*2 + 2) / 3
	if f < 1 {
		f = 1
	}
	if f >= m.NumLayers() {
		f = m.NumLayers() - 1
	}
	if f < 1 {
		f = 1
	}
	return f
}

// EarlyFusedLayer evaluates the DeepThings-style scheme: the first
// fusedPrefix layers are fused into one segment partitioned equally across
// all devices; the remaining layers execute on the fastest single device.
// fusedPrefix <= 0 selects DefaultFusedPrefix.
func EarlyFusedLayer(m *nn.Model, c *cluster.Cluster, fusedPrefix int) (*OneStage, error) {
	ec, err := newEvalContext(m, c)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 0 {
		return nil, errNoDevices
	}
	if fusedPrefix <= 0 {
		fusedPrefix = DefaultFusedPrefix(m, n)
	}
	if fusedPrefix >= m.NumLayers() {
		return nil, fmt.Errorf("schemes: fused prefix %d must leave at least one tail layer of %d", fusedPrefix, m.NumLayers())
	}
	for i := 0; i < fusedPrefix; i++ {
		if m.Layers[i].NeedsFullInput() {
			return nil, fmt.Errorf("schemes: fused prefix crosses unsplittable layer %d (%s)", i, m.Layers[i].Name)
		}
	}
	out := newOneStage("EFL", n)
	outH := m.OutShape(fusedPrefix - 1).H
	ec.accumulateSegment(out, 0, fusedPrefix, allDeviceIdx(n), partition.Equal(outH, n))
	tailH := m.Output().H
	ec.accumulateSegment(out, fusedPrefix, m.NumLayers(), []int{fastestDevice(c)},
		[]partition.Range{partition.Full(tailH)})
	return out, nil
}

// GridShape chooses a near-square rows x cols factorization of n tiles
// (rows >= cols), the layout DeepThings uses for its fused block.
func GridShape(n int) (rows, cols int) {
	if n < 1 {
		return 1, 1
	}
	cols = 1
	for c := 2; c*c <= n; c++ {
		if n%c == 0 {
			cols = c
		}
	}
	return n / cols, cols
}

// EarlyFusedLayerGrid evaluates the DeepThings scheme with its original 2D
// grid partition of the fused block (the paper's EFL baseline splits into
// strips; DeepThings itself used grids to cut the per-device footprint).
// The fused prefix is tiled rows x cols across all devices; the remaining
// layers run on the fastest device. Per-device redundancy is attributed
// proportionally to each device's work (GridStats tracks the exact global
// overlap but not per-cell ownership).
func EarlyFusedLayerGrid(m *nn.Model, c *cluster.Cluster, fusedPrefix, rows, cols int) (*OneStage, error) {
	ec, err := newEvalContext(m, c)
	if err != nil {
		return nil, err
	}
	n := c.Size()
	if n == 0 {
		return nil, errNoDevices
	}
	if rows*cols != n {
		return nil, fmt.Errorf("schemes: %dx%d grid for %d devices", rows, cols, n)
	}
	if fusedPrefix <= 0 {
		fusedPrefix = DefaultFusedPrefix(m, n)
	}
	if fusedPrefix >= m.NumLayers() {
		return nil, fmt.Errorf("schemes: fused prefix %d must leave at least one tail layer of %d", fusedPrefix, m.NumLayers())
	}
	for i := 0; i < fusedPrefix; i++ {
		if m.Layers[i].NeedsFullInput() {
			return nil, fmt.Errorf("schemes: fused prefix crosses unsplittable layer %d (%s)", i, m.Layers[i].Name)
		}
	}
	out := newOneStage("EFL-grid", n)
	outShape := m.OutShape(fusedPrefix - 1)
	tiles := partition.GridPartition(outShape.H, outShape.W, rows, cols)
	stats := ec.cm.Calc.GridStats(0, fusedPrefix, tiles)

	// Fused block: per-device compute plus scatter/gather communication.
	var comp, commBytes float64
	var totalFlops float64
	flopsPer := make([]float64, n)
	for k, tile := range tiles {
		f := float64(ec.cm.Calc.SegmentRectFLOPs(0, fusedPrefix, tile))
		flopsPer[k] = f
		totalFlops += f
		speed := c.Devices[k].EffectiveSpeed()
		if speed > 0 {
			if t := f / speed; t > comp {
				comp = t
			}
			out.DeviceBusySeconds[k] += f / speed
		}
		need := ec.cm.Calc.SegmentRects(0, fusedPrefix, tile)[0]
		commBytes += float64(ec.cm.Calc.RectBytes(0, need) + ec.cm.Calc.RectBytes(fusedPrefix, tile))
	}
	fusedSeconds := comp + commBytes/c.BandwidthBps
	for k := range tiles {
		out.DeviceFLOPs[k] += flopsPer[k]
		if totalFlops > 0 {
			out.DeviceRedundant[k] += stats.RedundantFLOPs * flopsPer[k] / totalFlops
		}
	}
	out.Segments = append(out.Segments, SegmentExec{
		From: 0, To: fusedPrefix,
		DeviceIdx: allDeviceIdx(n),
		Seconds:   fusedSeconds,
	})
	out.Seconds += fusedSeconds

	// Tail on the fastest device (same as strip EFL).
	tailH := m.Output().H
	ec.accumulateSegment(out, fusedPrefix, m.NumLayers(), []int{fastestDevice(c)},
		[]partition.Range{partition.Full(tailH)})
	return out, nil
}
