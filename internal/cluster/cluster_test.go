package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceEffectiveSpeed(t *testing.T) {
	d := Device{ID: "d", Capacity: 2e9, Alpha: 2}
	if got := d.EffectiveSpeed(); got != 1e9 {
		t.Fatalf("EffectiveSpeed = %v", got)
	}
	// Zero alpha falls back to capacity rather than dividing by zero.
	d.Alpha = 0
	if got := d.EffectiveSpeed(); got != 2e9 {
		t.Fatalf("EffectiveSpeed with zero alpha = %v", got)
	}
	d.Alpha = 1
	if got := d.ComputeSeconds(4e9); got != 2 {
		t.Fatalf("ComputeSeconds = %v", got)
	}
}

func TestHomogenize(t *testing.T) {
	c := PaperHeterogeneous()
	h := c.Homogenize()
	if h.Size() != c.Size() {
		t.Fatalf("size changed: %d", h.Size())
	}
	want := c.AverageCapacity()
	for _, d := range h.Devices {
		if math.Abs(d.Capacity-want) > 1e-6 {
			t.Fatalf("capacity %v != avg %v", d.Capacity, want)
		}
	}
	if !h.IsHomogeneous() {
		t.Fatal("Homogenize result not homogeneous")
	}
	if h.BandwidthBps != c.BandwidthBps {
		t.Fatal("bandwidth changed")
	}
	// Eq. 12: total capacity is preserved.
	if math.Abs(h.TotalCapacity()-c.TotalCapacity()) > 1e-3 {
		t.Fatalf("total capacity changed: %v vs %v", h.TotalCapacity(), c.TotalCapacity())
	}
}

func TestPaperHeterogeneousProfile(t *testing.T) {
	c := PaperHeterogeneous()
	if c.Size() != 8 {
		t.Fatalf("size = %d, want 8", c.Size())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var n12, n8, n6 int
	for _, d := range c.Devices {
		switch d.FreqHz {
		case 1.2e9:
			n12++
		case 800e6:
			n8++
		case 600e6:
			n6++
		}
	}
	if n12 != 2 || n8 != 2 || n6 != 4 {
		t.Fatalf("frequency mix = %d/%d/%d, want 2/2/4", n12, n8, n6)
	}
	if c.BandwidthBps != WiFi50MbpsBps {
		t.Fatalf("bandwidth = %v", c.BandwidthBps)
	}
	if c.IsHomogeneous() {
		t.Fatal("paper cluster must be heterogeneous")
	}
}

func TestSortedBySpeed(t *testing.T) {
	c := PaperHeterogeneous()
	order := c.SortedBySpeed()
	for i := 1; i < len(order); i++ {
		if c.Devices[order[i-1]].EffectiveSpeed() < c.Devices[order[i]].EffectiveSpeed() {
			t.Fatalf("order not descending at %d", i)
		}
	}
	// Stability: equal-speed devices keep index order.
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("expected stable order for the two 1.2GHz devices, got %v", order)
	}
}

func TestValidateErrors(t *testing.T) {
	good := Homogeneous(2, 1e9)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Cluster{BandwidthBps: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cluster validated")
	}
	bad = &Cluster{Devices: []Device{{ID: "x", Capacity: 1}}, BandwidthBps: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth validated")
	}
	bad = &Cluster{Devices: []Device{{ID: "x", Capacity: 0}}, BandwidthBps: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero capacity validated")
	}
	bad = &Cluster{Devices: []Device{{ID: "x", Capacity: 1, Alpha: -1}}, BandwidthBps: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative alpha validated")
	}
}

func TestFitAlphaExact(t *testing.T) {
	// Synthetic device: capacity 1 GMAC/s, true alpha 1.5.
	const cap0, alpha = 1e9, 1.5
	var samples []Sample
	for _, flops := range []float64{1e8, 5e8, 2e9, 7e9} {
		samples = append(samples, Sample{Flops: flops, Seconds: alpha * flops / cap0})
	}
	got, err := FitAlpha(cap0, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 1e-9 {
		t.Fatalf("alpha = %v, want %v", got, alpha)
	}
	d, err := Calibrate(Device{ID: "d", Capacity: cap0, Alpha: 1}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.EffectiveSpeed()-cap0/alpha) > 1 {
		t.Fatalf("calibrated speed = %v", d.EffectiveSpeed())
	}
}

func TestFitAlphaNoisyProperty(t *testing.T) {
	// With symmetric multiplicative noise the fit must stay within 20% of
	// the true alpha for any plausible parameters.
	f := func(a8, c8 uint8) bool {
		alpha := 0.5 + float64(a8%40)/20 // 0.5 .. 2.45
		capacity := 1e8 * (1 + float64(c8%50))
		noise := []float64{0.9, 1.1, 0.95, 1.05, 1.0}
		var samples []Sample
		for i, nz := range noise {
			flops := 1e8 * float64(i+1)
			samples = append(samples, Sample{Flops: flops, Seconds: alpha * flops / capacity * nz})
		}
		got, err := FitAlpha(capacity, samples)
		if err != nil {
			return false
		}
		return got > alpha*0.8 && got < alpha*1.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFitAlphaErrors(t *testing.T) {
	if _, err := FitAlpha(0, []Sample{{1, 1}}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := FitAlpha(1e9, nil); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := FitAlpha(1e9, []Sample{{0, 1}}); err == nil {
		t.Fatal("zero-flops samples accepted")
	}
	if _, err := FitAlpha(1e9, []Sample{{1e9, -2}}); err == nil {
		t.Fatal("negative-time samples accepted")
	}
}

func TestFitSpeed(t *testing.T) {
	const speed = 2.5e9
	var samples []Sample
	for _, flops := range []float64{1e9, 3e9, 8e9} {
		samples = append(samples, Sample{Flops: flops, Seconds: flops / speed})
	}
	got, err := FitSpeed(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-speed)/speed > 1e-9 {
		t.Fatalf("speed = %v, want %v", got, speed)
	}
	if _, err := FitSpeed(nil); err == nil {
		t.Fatal("no samples accepted")
	}
}

func TestRPi4BCapacityScalesWithFrequency(t *testing.T) {
	lo := RPi4B("lo", 600e6)
	hi := RPi4B("hi", 1.2e9)
	if math.Abs(hi.Capacity/lo.Capacity-2) > 1e-9 {
		t.Fatalf("capacity ratio = %v, want 2", hi.Capacity/lo.Capacity)
	}
}
