// Package cluster describes heterogeneous IoT edge clusters: per-device
// computing capacity ϑ(d_k), the regression coefficient α_k of the paper's
// compute-time model (Eq. 5), and the shared WLAN bandwidth b (the paper
// assumes one bandwidth for all devices under the same access point, §III-A).
//
// It also provides profiles for the paper's testbed — Raspberry Pi 4B boards
// pinned to one CPU core at configurable frequencies behind a 50 Mbps WiFi
// access point — and the least-squares calibration that produces α_k from
// measured (FLOPs, seconds) samples.
package cluster

import (
	"fmt"
	"sort"
)

// Device is one edge computing device.
type Device struct {
	// ID identifies the device ("pi-0", ...).
	ID string
	// Capacity is ϑ(d_k): sustained multiply-accumulates per second.
	Capacity float64
	// Alpha is the α_k regression coefficient of Eq. (5); compute time is
	// Alpha * FLOPs / Capacity. A freshly profiled device has Alpha 1.
	Alpha float64
	// FreqHz records the CPU frequency the profile was derived from
	// (informational; Capacity is what the planner uses).
	FreqHz float64
}

// EffectiveSpeed returns Capacity/Alpha — the FLOPs per wall-clock second
// the device actually sustains, the weight used for strip balancing.
func (d Device) EffectiveSpeed() float64 {
	if d.Alpha <= 0 {
		return d.Capacity
	}
	return d.Capacity / d.Alpha
}

// ComputeSeconds returns the modelled execution time of the given MAC count
// on this device (Eq. 5).
func (d Device) ComputeSeconds(flops float64) float64 {
	speed := d.EffectiveSpeed()
	if speed <= 0 {
		return 0
	}
	return flops / speed
}

func (d Device) String() string {
	return fmt.Sprintf("%s(%.2f GMAC/s)", d.ID, d.Capacity/1e9)
}

// Cluster is a set of devices behind one shared wireless access point.
type Cluster struct {
	// Devices are the cluster members.
	Devices []Device
	// BandwidthBps is b: the point-to-point bandwidth in bytes per second
	// between any two devices (the paper assumes it uniform under one
	// WLAN).
	BandwidthBps float64
}

// Size returns the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// TotalCapacity returns the sum of device capacities.
func (c *Cluster) TotalCapacity() float64 {
	var sum float64
	for _, d := range c.Devices {
		sum += d.Capacity
	}
	return sum
}

// AverageCapacity returns the mean device capacity — the homogenised
// cluster D' of the paper's Eq. (12).
func (c *Cluster) AverageCapacity() float64 {
	if len(c.Devices) == 0 {
		return 0
	}
	return c.TotalCapacity() / float64(len(c.Devices))
}

// AverageEffectiveSpeed returns the mean of Capacity/Alpha over devices.
func (c *Cluster) AverageEffectiveSpeed() float64 {
	if len(c.Devices) == 0 {
		return 0
	}
	var sum float64
	for _, d := range c.Devices {
		sum += d.EffectiveSpeed()
	}
	return sum / float64(len(c.Devices))
}

// Homogenize returns the cluster D' of Eq. (12): same device count and
// bandwidth, every capacity replaced by the average.
func (c *Cluster) Homogenize() *Cluster {
	avg := c.AverageCapacity()
	avgSpeed := c.AverageEffectiveSpeed()
	alpha := 1.0
	if avgSpeed > 0 {
		alpha = avg / avgSpeed
	}
	devices := make([]Device, len(c.Devices))
	for i := range devices {
		devices[i] = Device{
			ID:       fmt.Sprintf("avg-%d", i),
			Capacity: avg,
			Alpha:    alpha,
		}
	}
	return &Cluster{Devices: devices, BandwidthBps: c.BandwidthBps}
}

// SortedBySpeed returns device indices ordered by descending effective
// speed, the iteration order of Algorithm 2.
func (c *Cluster) SortedBySpeed() []int {
	order := make([]int, len(c.Devices))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.Devices[order[a]].EffectiveSpeed() > c.Devices[order[b]].EffectiveSpeed()
	})
	return order
}

// IsHomogeneous reports whether all devices have the same effective speed
// within a 1e-9 relative tolerance.
func (c *Cluster) IsHomogeneous() bool {
	if len(c.Devices) <= 1 {
		return true
	}
	first := c.Devices[0].EffectiveSpeed()
	for _, d := range c.Devices[1:] {
		s := d.EffectiveSpeed()
		diff := s - first
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*first {
			return false
		}
	}
	return true
}

// Validate checks the cluster is usable by the planner.
func (c *Cluster) Validate() error {
	if len(c.Devices) == 0 {
		return fmt.Errorf("cluster: no devices")
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("cluster: non-positive bandwidth %v", c.BandwidthBps)
	}
	for i, d := range c.Devices {
		if d.Capacity <= 0 {
			return fmt.Errorf("cluster: device %d (%s) has capacity %v", i, d.ID, d.Capacity)
		}
		if d.Alpha < 0 {
			return fmt.Errorf("cluster: device %d (%s) has negative alpha %v", i, d.ID, d.Alpha)
		}
	}
	return nil
}
