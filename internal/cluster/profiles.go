package cluster

import "fmt"

// Constants describing the paper's testbed (§V-A): Raspberry Pi 4B boards
// pinned to one ARM core, behind a 50 Mbps WiFi access point.
const (
	// WiFi50MbpsBps is the access-point bandwidth in bytes per second.
	WiFi50MbpsBps = 50e6 / 8

	// MACsPerCycle is the sustained multiply-accumulates per CPU cycle a
	// single Cortex-A72 core achieves on NNPACK-accelerated convolutions.
	// NEON issues a 4-wide fused multiply-add per cycle at peak; ~50%
	// efficiency on real conv loops gives 2 MAC/cycle, which puts a
	// single-core 600 MHz VGG-16 inference at ~13 s — consistent with
	// single-core Raspberry Pi measurements.
	MACsPerCycle = 2.0
)

// RPi4B returns a Raspberry Pi 4B device profile pinned to one core at the
// given CPU frequency.
func RPi4B(id string, freqHz float64) Device {
	return Device{
		ID:       id,
		Capacity: freqHz * MACsPerCycle,
		Alpha:    1,
		FreqHz:   freqHz,
	}
}

// Homogeneous builds a cluster of n identical Raspberry Pi 4B devices at the
// given frequency behind the 50 Mbps access point — the configuration of the
// paper's capacity experiments (Figs. 8, 9, 12).
func Homogeneous(n int, freqHz float64) *Cluster {
	devices := make([]Device, n)
	for i := range devices {
		devices[i] = RPi4B(fmt.Sprintf("pi-%d", i), freqHz)
	}
	return &Cluster{Devices: devices, BandwidthBps: WiFi50MbpsBps}
}

// PaperHeterogeneous builds the 8-device heterogeneous cluster of the
// paper's Table I: 2x 1.2 GHz, 2x 800 MHz and 4x 600 MHz Raspberry Pi 4Bs.
func PaperHeterogeneous() *Cluster {
	freqs := []float64{1.2e9, 1.2e9, 800e6, 800e6, 600e6, 600e6, 600e6, 600e6}
	devices := make([]Device, len(freqs))
	for i, f := range freqs {
		devices[i] = RPi4B(fmt.Sprintf("pi-%d-%dMHz", i, int(f/1e6)), f)
	}
	return &Cluster{Devices: devices, BandwidthBps: WiFi50MbpsBps}
}

// Fig13Heterogeneous builds the 6-device heterogeneous cluster used by the
// paper's PICO-vs-BFS comparison (Fig. 13): a spread of frequencies on the
// same access point.
func Fig13Heterogeneous() *Cluster {
	freqs := []float64{1.2e9, 1.0e9, 800e6, 800e6, 600e6, 600e6}
	devices := make([]Device, len(freqs))
	for i, f := range freqs {
		devices[i] = RPi4B(fmt.Sprintf("pi-%d-%dMHz", i, int(f/1e6)), f)
	}
	return &Cluster{Devices: devices, BandwidthBps: WiFi50MbpsBps}
}
