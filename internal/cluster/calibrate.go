package cluster

import "fmt"

// Sample is one calibration measurement: a workload of Flops
// multiply-accumulates that took Seconds of wall-clock time on the device.
type Sample struct {
	Flops   float64
	Seconds float64
}

// FitAlpha computes the α_k coefficient of Eq. (5) for a device of known
// capacity by least squares through the origin over measured samples:
// minimizing Σ (t_i − α·θ_i/ϑ)². The paper obtains α_k "by a regression
// model"; this is that regression.
func FitAlpha(capacity float64, samples []Sample) (float64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("cluster: non-positive capacity %v", capacity)
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("cluster: no calibration samples")
	}
	var num, den float64
	for _, s := range samples {
		x := s.Flops / capacity
		num += x * s.Seconds
		den += x * x
	}
	if den == 0 {
		return 0, fmt.Errorf("cluster: calibration samples have zero workload")
	}
	alpha := num / den
	if alpha <= 0 {
		return 0, fmt.Errorf("cluster: calibration produced non-positive alpha %v", alpha)
	}
	return alpha, nil
}

// Calibrate returns a copy of the device with Alpha fitted from samples.
func Calibrate(d Device, samples []Sample) (Device, error) {
	alpha, err := FitAlpha(d.Capacity, samples)
	if err != nil {
		return Device{}, err
	}
	d.Alpha = alpha
	return d, nil
}

// FitSpeed estimates a device's effective speed (FLOPs per second) directly
// from samples, for bootstrapping a profile when the nominal capacity is
// unknown: the least-squares slope of θ against t, inverted.
func FitSpeed(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("cluster: no calibration samples")
	}
	var num, den float64
	for _, s := range samples {
		num += s.Seconds * s.Flops
		den += s.Seconds * s.Seconds
	}
	if den == 0 || num <= 0 {
		return 0, fmt.Errorf("cluster: degenerate calibration samples")
	}
	return num / den, nil
}
