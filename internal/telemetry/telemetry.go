// Package telemetry is the streaming-percentile SLO engine: a lock-free
// fixed-size sample ring per series (atomic cursor, per-producer stripes, so
// pipeline stage drivers and the serving gateway record latency samples with
// no shared mutex), periodically folded into immutable sorted time-windowed
// ranges (partition/merge in the style of an append-only time-series log),
// over which p50/p95/p99 are computed by quickselect on demand.
//
// The write path is three atomic stores and one atomic add — cheap enough to
// sit on the per-task and per-tile hot paths. All sorting, merging and
// selection happens on the read path (a /metrics scrape, an end-of-run
// report, an SLO watcher tick), under a per-series mutex that writers never
// touch.
//
// Series are keyed (model, stage, device, kind):
//
//	kind "e2e"   — whole-task latency (stage = -1, device = -1)
//	kind "stage" — one pipeline stage's round trip (device = -1)
//	kind "exec"  — one device's worker-reported tile compute time
//
// The Watcher closes the loop: a p99 over its bound or a per-device exec
// skew past its factor is reported as a Breach, which the serving layer
// feeds to the pipeline's measured re-balancer — the same machinery the
// fault path uses when a device dies.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind labels for the standard series the runtime and gateway record.
const (
	// KindE2E is whole-task latency, submission to completion.
	KindE2E = "e2e"
	// KindStage is one pipeline stage's per-task round trip (split through
	// stitch, including waits on the stage's workers).
	KindStage = "stage"
	// KindExec is one device's worker-reported tile compute time.
	KindExec = "exec"
	// KindRequest is one gateway request's whole latency, enqueue through
	// result delivery (micro-batch wait included), recorded by the serving
	// layer.
	KindRequest = "request"
)

// Key identifies one latency series. Stage and Device are -1 when the
// dimension does not apply (e.g. end-to-end latency has neither).
type Key struct {
	Model  string
	Stage  int
	Device int
	Kind   string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/stage=%d/device=%d/%s", k.Model, k.Stage, k.Device, k.Kind)
}

// less orders keys for stable snapshot/exposition output.
func (k Key) less(o Key) bool {
	if k.Model != o.Model {
		return k.Model < o.Model
	}
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Stage != o.Stage {
		return k.Stage < o.Stage
	}
	return k.Device < o.Device
}

// Options configure a Registry. The zero value gets defaults.
type Options struct {
	// Window is the sliding window Snapshot and WriteMetrics aggregate over
	// (default 60s).
	Window time.Duration
	// Retention bounds how far back a series keeps folded ranges
	// (default 5m; always at least Window).
	Retention time.Duration
	// RingSlots is the per-stripe ring capacity, rounded up to a power of
	// two (default 256).
	RingSlots int
	// Stripes is the number of per-producer ring stripes, rounded up to a
	// power of two (default 4).
	Stripes int

	// now overrides the clock for tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.Retention < o.Window {
		o.Retention = 5 * time.Minute
		if o.Retention < o.Window {
			o.Retention = o.Window
		}
	}
	if o.RingSlots <= 0 {
		o.RingSlots = 256
	}
	if o.Stripes <= 0 {
		o.Stripes = 4
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Registry owns the series of one process (a gateway, a picorun
// coordinator). Series are created lazily on first use and never removed.
type Registry struct {
	opts Options

	mu     sync.RWMutex
	series map[Key]*Series
}

// New builds a registry.
func New(opts Options) *Registry {
	return &Registry{opts: opts.withDefaults(), series: make(map[Key]*Series)}
}

// Window returns the registry's sliding aggregation window.
func (r *Registry) Window() time.Duration { return r.opts.Window }

// Series returns the series for key, creating it on first use.
func (r *Registry) Series(key Key) *Series {
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s == nil {
		s = newSeries(key, r.opts)
		r.series[key] = s
	}
	return s
}

// Keys returns every live series key, sorted.
func (r *Registry) Keys() []Key {
	r.mu.RLock()
	keys := make([]Key, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	r.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// Snapshot folds every series and returns its sliding-window percentile
// stats, sorted by key. Empty-window series are included (WindowCount 0) so
// a scrape always shows every series ever recorded.
func (r *Registry) Snapshot() []SeriesStats {
	keys := r.Keys()
	out := make([]SeriesStats, 0, len(keys))
	for _, k := range keys {
		out = append(out, r.Series(k).Stats())
	}
	return out
}

// WriteMetrics renders the registry in the plaintext exposition format
// served by picoserve's GET /metrics:
//
//	pico_latency_seconds{model="toy",stage="0",device="1",kind="exec",quantile="0.99"} 0.0123
//	pico_latency_seconds_count{model="toy",stage="0",device="1",kind="exec"} 57
//
// stage="-1" / device="-1" mark dimensions that do not apply. Counts are
// lifetime totals; quantiles cover the sliding window.
func (r *Registry) WriteMetrics(w io.Writer) error {
	stats := r.Snapshot()
	if _, err := fmt.Fprintf(w, "# TYPE pico_latency_seconds summary\n"); err != nil {
		return err
	}
	for _, st := range stats {
		labels := fmt.Sprintf("model=%q,stage=%q,device=%q,kind=%q",
			st.Key.Model, fmt.Sprint(st.Key.Stage), fmt.Sprint(st.Key.Device), st.Key.Kind)
		for _, q := range [...]struct {
			name string
			v    float64
		}{{"0.5", st.P50}, {"0.95", st.P95}, {"0.99", st.P99}} {
			if _, err := fmt.Fprintf(w, "pico_latency_seconds{%s,quantile=%q} %g\n", labels, q.name, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "pico_latency_seconds_count{%s} %d\n", labels, st.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "pico_latency_seconds_window{%s} %d\n", labels, st.WindowCount); err != nil {
			return err
		}
		if st.Dropped > 0 {
			if _, err := fmt.Fprintf(w, "pico_latency_samples_dropped{%s} %d\n", labels, st.Dropped); err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesStats is one series' sliding-window percentile snapshot.
type SeriesStats struct {
	Key Key
	// Count is the lifetime number of recorded samples.
	Count int64
	// Dropped counts samples lost to ring overwrite before a fold caught
	// them (the reader lagging a burst), never silently.
	Dropped int64
	// WindowCount is how many samples the sliding window held; the
	// percentiles below are meaningless when it is 0.
	WindowCount int
	// P50, P95, P99 are nearest-rank quantiles over the window, Max and
	// Mean the extremes, all in the recorded unit (seconds).
	P50, P95, P99, Max, Mean float64
}

// Table renders stats rows as an aligned text table (picorun's end-of-run
// percentile report).
func Table(stats []SeriesStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-6s %5s %6s %6s %10s %10s %10s\n",
		"model", "kind", "stage", "device", "n", "p50", "p95", "p99")
	for _, st := range stats {
		if st.WindowCount == 0 {
			continue
		}
		stage, device := fmt.Sprint(st.Key.Stage), fmt.Sprint(st.Key.Device)
		if st.Key.Stage < 0 {
			stage = "-"
		}
		if st.Key.Device < 0 {
			device = "-"
		}
		fmt.Fprintf(&b, "%-20s %-6s %5s %6s %6d %10s %10s %10s\n",
			st.Key.Model, st.Key.Kind, stage, device, st.WindowCount,
			fmtSeconds(st.P50), fmtSeconds(st.P95), fmtSeconds(st.P99))
	}
	return b.String()
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
