package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Series is one key's sample stream: a lock-free ring absorbing writes,
// folded on the read path into a bounded log of immutable sorted ranges.
type Series struct {
	key  Key
	opts Options
	ring *ring

	// nextStripe assigns producer stripes round-robin.
	nextStripe atomic.Uint32

	// mu guards the reader-side state only; the write path never takes it.
	mu       sync.Mutex
	readFrom []uint64
	log      []Range
	dropped  int64
}

// maxLogRanges bounds the per-series range log; past it, the log is merged
// down to one range so query cost stays linear in retained samples.
const maxLogRanges = 16

func newSeries(key Key, opts Options) *Series {
	r := newRing(opts.Stripes, opts.RingSlots)
	return &Series{
		key:      key,
		opts:     opts,
		ring:     r,
		readFrom: make([]uint64, len(r.stripes)),
	}
}

// Key returns the series identity.
func (s *Series) Key() Key { return s.key }

// Producer is one writer's handle on a series, bound to a ring stripe so
// distinct producers (each pipeline stage driver, the gateway) record with
// no shared state at all. A Producer may be shared by multiple goroutines;
// they then contend only on the stripe's single atomic cursor.
type Producer struct {
	s      *Series
	stripe int
}

// Producer allocates a writer handle, assigning stripes round-robin.
func (s *Series) Producer() *Producer {
	return &Producer{s: s, stripe: int(s.nextStripe.Add(1) - 1)}
}

// Record stores v (seconds) observed now.
func (p *Producer) Record(v float64) {
	p.s.ring.record(p.stripe, p.s.opts.now().UnixNano(), v)
}

// RecordAt stores v (seconds) observed at the given time — use it when the
// hot path already has the timestamp, avoiding a second clock read.
func (p *Producer) RecordAt(at time.Time, v float64) {
	p.s.ring.record(p.stripe, at.UnixNano(), v)
}

// Record stores v (seconds) without a Producer handle, spreading writers
// across stripes by the clock's low bits. Prefer Producer on hot paths.
func (s *Series) Record(v float64) {
	at := s.opts.now().UnixNano()
	s.ring.record(int(at>>6), at, v)
}

// Count returns the lifetime number of recorded samples (including any the
// fold path lost to ring overwrite).
func (s *Series) Count() int64 { return s.ring.total() }

// fold drains the ring into the immutable range log, evicts ranges past
// retention and bounds the log length. Callers hold s.mu.
func (s *Series) foldLocked(now int64) {
	buf, dropped := s.ring.drain(s.readFrom, nil)
	s.dropped += dropped
	if len(buf) > 0 {
		s.log = append(s.log, NewRange(buf))
	}
	// Evict: partition each range at the retention horizon and keep the
	// newer side; a range wholly older vanishes.
	cutoff := now - s.opts.Retention.Nanoseconds()
	keep := s.log[:0]
	for _, r := range s.log {
		if r.MaxAt() < cutoff {
			continue
		}
		if r.MinAt() < cutoff {
			_, r = r.Partition(cutoff)
		}
		keep = append(keep, r)
	}
	s.log = keep
	for len(s.log) > maxLogRanges {
		merged := Merge(s.log[0], s.log[1])
		s.log = append([]Range{merged}, s.log[2:]...)
	}
}

// WindowValues folds the ring and returns the values observed in
// [now-window, now], in a fresh slice the caller may reorder (quickselect
// does).
func (s *Series) WindowValues(window time.Duration) []float64 {
	now := s.opts.now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked(now)
	cutoff := now - window.Nanoseconds()
	var vals []float64
	for _, r := range s.log {
		_, newer := r.Partition(cutoff)
		vals = newer.AppendValues(vals)
	}
	return vals
}

// Stats folds the series and computes its sliding-window percentile
// snapshot over the registry's default window.
func (s *Series) Stats() SeriesStats {
	return s.StatsWindow(s.opts.Window)
}

// StatsWindow is Stats over an explicit window.
func (s *Series) StatsWindow(window time.Duration) SeriesStats {
	vals := s.WindowValues(window)
	st := SeriesStats{Key: s.key, Count: s.Count(), WindowCount: len(vals)}
	s.mu.Lock()
	st.Dropped = s.dropped
	s.mu.Unlock()
	if len(vals) == 0 {
		return st
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	st.Mean = sum / float64(len(vals))
	st.P50 = Quantile(vals, 0.50)
	st.P95 = Quantile(vals, 0.95)
	st.P99 = Quantile(vals, 0.99)
	st.Max = Quantile(vals, 1)
	return st
}
