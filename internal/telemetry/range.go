package telemetry

import "sort"

// Range is an immutable run of samples sorted by observation time. Ranges
// are built once from a ring drain and never mutated; Partition returns
// zero-copy sub-ranges of the same backing array, and Merge builds a new
// range from two sorted inputs — the append-only time-series-log idiom
// (sorted immutable runs, split by a pivot, merged when the run count
// grows).
type Range struct {
	samples []Sample
}

// NewRange sorts samples by time (stable on equal timestamps) and freezes
// them into a Range. The input slice is owned by the Range afterwards.
func NewRange(samples []Sample) Range {
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].At < samples[j].At })
	return Range{samples: samples}
}

// Len returns the number of samples.
func (r Range) Len() int { return len(r.samples) }

// At returns the i-th sample in time order.
func (r Range) At(i int) Sample { return r.samples[i] }

// MinAt and MaxAt bound the range's observation times; both 0 when empty.
func (r Range) MinAt() int64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[0].At
}

func (r Range) MaxAt() int64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[len(r.samples)-1].At
}

// Partition splits the range at the pivot time: older holds samples with
// At < pivot, newer the rest. Both share the receiver's backing array
// (zero-copy), which is safe because ranges are immutable.
func (r Range) Partition(pivot int64) (older, newer Range) {
	i := sort.Search(len(r.samples), func(i int) bool { return r.samples[i].At >= pivot })
	return Range{samples: r.samples[:i]}, Range{samples: r.samples[i:]}
}

// Merge combines two ranges into a new sorted range. Disjoint-in-time
// inputs (the common case: consecutive fold buckets) append without an
// element-wise merge.
func Merge(a, b Range) Range {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	// Keep time order cheap for the consecutive-bucket case.
	if a.MinAt() > b.MaxAt() {
		a, b = b, a
	}
	out := make([]Sample, 0, a.Len()+b.Len())
	if a.MaxAt() <= b.MinAt() {
		out = append(append(out, a.samples...), b.samples...)
		return Range{samples: out}
	}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if a.samples[i].At <= b.samples[j].At {
			out = append(out, a.samples[i])
			i++
		} else {
			out = append(out, b.samples[j])
			j++
		}
	}
	out = append(out, a.samples[i:]...)
	out = append(out, b.samples[j:]...)
	return Range{samples: out}
}

// AppendValues appends the range's sample values to dst and returns it.
func (r Range) AppendValues(dst []float64) []float64 {
	for _, s := range r.samples {
		dst = append(dst, s.V)
	}
	return dst
}
