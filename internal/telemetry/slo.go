package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Policy is what the SLO watcher enforces. Zero-valued bounds disable the
// corresponding check.
type Policy struct {
	// P99Bound sheds a breach when a kind-"e2e" series' windowed p99
	// exceeds it (seconds). 0 disables the latency check.
	P99Bound float64
	// SkewFactor fires when, within one (model, stage) group of
	// kind-"exec" series, the slowest device's p99 exceeds the fastest's by
	// more than this factor — a straggler the planner's static profile did
	// not predict. 0 disables; values <= 1 are meaningless and rejected by
	// the watcher constructor.
	SkewFactor float64
	// MinSamples is the window population below which a series is too
	// thin to judge (default 8).
	MinSamples int
	// Window overrides the registry's sliding window (0 = registry
	// default).
	Window time.Duration
	// Cooldown suppresses repeat breaches of the same key while the
	// control action (a re-balance) takes effect (default 30s).
	Cooldown time.Duration
}

// BreachKind classifies what the watcher observed.
type BreachKind string

const (
	// BreachP99 is an end-to-end p99 over the policy bound.
	BreachP99 BreachKind = "p99-over-bound"
	// BreachSkew is per-device exec-time skew past the policy factor.
	BreachSkew BreachKind = "device-skew"
)

// Breach is one SLO violation observation.
type Breach struct {
	// Kind classifies the breach.
	Kind BreachKind
	// Key is the offending series: the e2e series for BreachP99, the
	// slowest device's exec series for BreachSkew.
	Key Key
	// Observed and Bound are the measured value and the threshold it
	// crossed (p99 seconds for BreachP99; p99 ratio and factor for
	// BreachSkew).
	Observed, Bound float64
	// Detail is a human-readable elaboration.
	Detail string
}

func (b Breach) String() string {
	return fmt.Sprintf("%s %s: %.4g > %.4g — %s", b.Key, b.Kind, b.Observed, b.Bound, b.Detail)
}

// Watcher periodically evaluates a Policy against a Registry and reports
// breaches to a callback — the control half of the SLO loop. The action
// half (what a breach triggers) lives with the caller: picoserve feeds
// breaches to the pipeline's measured re-balancer, the same machinery the
// fault path drives when a device dies.
type Watcher struct {
	reg      *Registry
	pol      Policy
	onBreach func(Breach)

	mu       sync.Mutex
	lastFire map[Key]time.Time

	stop chan struct{}
	done chan struct{}
}

// NewWatcher validates the policy and builds a watcher. onBreach may be nil
// (Check's return value is then the only output).
func NewWatcher(reg *Registry, pol Policy, onBreach func(Breach)) (*Watcher, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: watcher needs a registry")
	}
	if pol.SkewFactor != 0 && pol.SkewFactor <= 1 {
		return nil, fmt.Errorf("telemetry: skew factor %v must exceed 1", pol.SkewFactor)
	}
	if pol.P99Bound < 0 {
		return nil, fmt.Errorf("telemetry: negative p99 bound %v", pol.P99Bound)
	}
	if pol.MinSamples <= 0 {
		pol.MinSamples = 8
	}
	if pol.Window <= 0 {
		pol.Window = reg.Window()
	}
	if pol.Cooldown <= 0 {
		pol.Cooldown = 30 * time.Second
	}
	return &Watcher{
		reg:      reg,
		pol:      pol,
		onBreach: onBreach,
		lastFire: make(map[Key]time.Time),
	}, nil
}

// Check evaluates the policy once against the registry's current windows
// and returns the breaches (after cooldown suppression), invoking the
// callback for each. Deterministic given the registry contents, so tests
// and operators can tick the watcher by hand.
func (w *Watcher) Check(now time.Time) []Breach {
	var breaches []Breach
	stats := w.reg.Snapshot()

	if w.pol.P99Bound > 0 {
		for _, st := range stats {
			if st.Key.Kind != KindE2E || st.WindowCount < w.pol.MinSamples {
				continue
			}
			if st.P99 > w.pol.P99Bound {
				breaches = append(breaches, Breach{
					Kind: BreachP99, Key: st.Key,
					Observed: st.P99, Bound: w.pol.P99Bound,
					Detail: fmt.Sprintf("windowed p99 %.4gs over bound %.4gs (%d samples)",
						st.P99, w.pol.P99Bound, st.WindowCount),
				})
			}
		}
	}

	if w.pol.SkewFactor > 1 {
		type group struct{ fast, slow SeriesStats }
		groups := make(map[Key]*group) // key with Device cleared
		for _, st := range stats {
			if st.Key.Kind != KindExec || st.WindowCount < w.pol.MinSamples || st.P99 <= 0 {
				continue
			}
			gk := st.Key
			gk.Device = -1
			g := groups[gk]
			if g == nil {
				groups[gk] = &group{fast: st, slow: st}
				continue
			}
			if st.P99 < g.fast.P99 {
				g.fast = st
			}
			if st.P99 > g.slow.P99 {
				g.slow = st
			}
		}
		for _, g := range groups {
			if g.fast.Key == g.slow.Key {
				continue
			}
			ratio := g.slow.P99 / g.fast.P99
			if ratio > w.pol.SkewFactor {
				breaches = append(breaches, Breach{
					Kind: BreachSkew, Key: g.slow.Key,
					Observed: ratio, Bound: w.pol.SkewFactor,
					Detail: fmt.Sprintf("device %d exec p99 %.4gs is %.2fx device %d's %.4gs",
						g.slow.Key.Device, g.slow.P99, ratio, g.fast.Key.Device, g.fast.P99),
				})
			}
		}
	}

	// Cooldown: a key that fired recently stays quiet while the control
	// action lands.
	w.mu.Lock()
	kept := breaches[:0]
	for _, b := range breaches {
		if last, ok := w.lastFire[b.Key]; ok && now.Sub(last) < w.pol.Cooldown {
			continue
		}
		w.lastFire[b.Key] = now
		kept = append(kept, b)
	}
	w.mu.Unlock()

	if w.onBreach != nil {
		for _, b := range kept {
			w.onBreach(b)
		}
	}
	return kept
}

// Start runs Check every interval until Stop. A watcher can be started at
// most once.
func (w *Watcher) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case now := <-t.C:
				w.Check(now)
			}
		}
	}()
}

// Stop halts a started watcher and waits for its loop to exit. Safe to call
// when never started.
func (w *Watcher) Stop() {
	if w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
}
