package telemetry

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-ticked clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestQuantileAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			switch trial % 3 {
			case 0:
				vals[i] = rng.NormFloat64()
			case 1:
				vals[i] = float64(rng.Intn(5)) // heavy duplicates
			default:
				vals[i] = float64(i) // pre-sorted
			}
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for _, q := range quantiles {
			k := int((q*float64(n))+0.9999999) - 1
			if k < 0 {
				k = 0
			}
			want := sorted[k]
			scratch := append([]float64(nil), vals...)
			got := Quantile(scratch, q)
			if got != want {
				t.Fatalf("trial %d n=%d q=%v: quickselect %v, sort reference %v", trial, n, q, got, want)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.99); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("single element: got %v, want 7", got)
	}
	if got := Quantile([]float64{3, 1, 2}, 1); got != 3 {
		t.Fatalf("q=1 max: got %v, want 3", got)
	}
}

func FuzzQuantile(f *testing.F) {
	f.Add(uint16(10), int64(1), uint8(50))
	f.Add(uint16(1), int64(99), uint8(99))
	f.Add(uint16(257), int64(-5), uint8(1))
	f.Fuzz(func(t *testing.T, n uint16, seed int64, qRaw uint8) {
		if n == 0 {
			return
		}
		q := (float64(qRaw%100) + 1) / 100
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n)%1024+1)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		got := Quantile(vals, q)
		// Nearest-rank result must be an element of the slice, and must sit
		// at the expected sorted index.
		k := 0
		for k < len(sorted) && float64(k+1) < q*float64(len(sorted)) {
			k++
		}
		if got != sorted[k] {
			t.Fatalf("n=%d q=%v: got %v, want sorted[%d]=%v", len(vals), q, got, k, sorted[k])
		}
	})
}

func TestRangePartitionMerge(t *testing.T) {
	samples := []Sample{{At: 5, V: 50}, {At: 1, V: 10}, {At: 3, V: 30}, {At: 3, V: 31}, {At: 9, V: 90}}
	r := NewRange(samples)
	if r.Len() != 5 || r.MinAt() != 1 || r.MaxAt() != 9 {
		t.Fatalf("range bounds: len=%d min=%d max=%d", r.Len(), r.MinAt(), r.MaxAt())
	}
	for i := 1; i < r.Len(); i++ {
		if r.At(i-1).At > r.At(i).At {
			t.Fatalf("not sorted at %d", i)
		}
	}

	older, newer := r.Partition(3)
	if older.Len() != 1 || newer.Len() != 4 {
		t.Fatalf("partition at 3: older=%d newer=%d", older.Len(), newer.Len())
	}
	if newer.MinAt() != 3 {
		t.Fatalf("newer must start at pivot, got %d", newer.MinAt())
	}

	// Partition is zero-copy and merge restores the original contents.
	m := Merge(older, newer)
	if m.Len() != r.Len() {
		t.Fatalf("merge of partitions: len %d want %d", m.Len(), r.Len())
	}
	for i := 0; i < m.Len(); i++ {
		if m.At(i) != r.At(i) {
			t.Fatalf("merge mismatch at %d: %+v vs %+v", i, m.At(i), r.At(i))
		}
	}

	// Interleaved merge keeps global order.
	a := NewRange([]Sample{{At: 1, V: 1}, {At: 4, V: 4}, {At: 7, V: 7}})
	b := NewRange([]Sample{{At: 2, V: 2}, {At: 4, V: 40}, {At: 9, V: 9}})
	ab := Merge(a, b)
	if ab.Len() != 6 {
		t.Fatalf("interleaved merge len %d", ab.Len())
	}
	for i := 1; i < ab.Len(); i++ {
		if ab.At(i-1).At > ab.At(i).At {
			t.Fatalf("interleaved merge unsorted at %d", i)
		}
	}

	// Empty-side merges return the other side untouched.
	if got := Merge(Range{}, a); got.Len() != a.Len() {
		t.Fatalf("empty-left merge len %d", got.Len())
	}
	if got := Merge(a, Range{}); got.Len() != a.Len() {
		t.Fatalf("empty-right merge len %d", got.Len())
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 2000
		totalWant  = writers * perWriter
		slotsPower = 1 << 12 // big enough that nothing laps
	)
	r := newRing(4, slotsPower)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.record(w, int64(w*perWriter+i), float64(w))
			}
		}(w)
	}
	wg.Wait()

	from := make([]uint64, len(r.stripes))
	buf, dropped := r.drain(from, nil)
	if dropped != 0 {
		t.Fatalf("dropped %d samples with oversized ring", dropped)
	}
	if len(buf) != totalWant {
		t.Fatalf("drained %d samples, want %d", len(buf), totalWant)
	}
	if r.total() != int64(totalWant) {
		t.Fatalf("total %d, want %d", r.total(), totalWant)
	}
	// Every writer's distinct timestamps all arrived exactly once.
	seen := make(map[int64]bool, totalWant)
	for _, s := range buf {
		if seen[s.At] {
			t.Fatalf("duplicate sample at=%d", s.At)
		}
		seen[s.At] = true
	}
}

func TestRingDrainWhileWriting(t *testing.T) {
	// Readers folding concurrently with writers must never return a torn or
	// duplicated sample; overwritten ones are counted, not returned.
	r := newRing(2, 64)
	const n = 50_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			r.record(i, int64(i), float64(i))
		}
	}()

	from := make([]uint64, len(r.stripes))
	var got int64
	var dropped int64
	seen := make(map[int64]bool, n)
	for {
		buf, d := r.drain(from, nil)
		dropped += d
		for _, s := range buf {
			if int64(s.V) != s.At {
				t.Fatalf("torn sample: at=%d v=%v", s.At, s.V)
			}
			if seen[s.At] {
				t.Fatalf("duplicate sample at=%d", s.At)
			}
			seen[s.At] = true
		}
		got += int64(len(buf))
		select {
		case <-done:
			buf, d = r.drain(from, nil)
			dropped += d
			for _, s := range buf {
				if int64(s.V) != s.At {
					t.Fatalf("torn sample in final drain: at=%d v=%v", s.At, s.V)
				}
			}
			got += int64(len(buf))
			if got+dropped != n {
				t.Fatalf("got %d + dropped %d != recorded %d", got, dropped, n)
			}
			return
		default:
		}
	}
}

func TestSeriesWindowAndRetention(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Window: 10 * time.Second, Retention: 30 * time.Second, now: clk.now})
	s := reg.Series(Key{Model: "toy", Stage: -1, Device: -1, Kind: KindE2E})
	p := s.Producer()

	// Ten old samples, advance past the window, ten new ones.
	for i := 0; i < 10; i++ {
		p.Record(1.0)
	}
	clk.advance(20 * time.Second)
	for i := 0; i < 10; i++ {
		p.Record(3.0)
	}

	st := s.Stats()
	if st.Count != 20 {
		t.Fatalf("lifetime count %d, want 20", st.Count)
	}
	if st.WindowCount != 10 {
		t.Fatalf("window count %d, want 10 (old samples must age out)", st.WindowCount)
	}
	if st.P50 != 3.0 || st.P99 != 3.0 {
		t.Fatalf("window quantiles p50=%v p99=%v, want 3.0", st.P50, st.P99)
	}

	// Past retention the old range is evicted entirely.
	clk.advance(40 * time.Second)
	s.mu.Lock()
	s.foldLocked(clk.now().UnixNano())
	logLen := 0
	for _, r := range s.log {
		logLen += r.Len()
	}
	s.mu.Unlock()
	if logLen != 0 {
		t.Fatalf("retention kept %d samples past horizon", logLen)
	}
}

func TestSeriesConcurrentProducersUnderStats(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Window: time.Minute, RingSlots: 1 << 12, now: clk.now})
	s := reg.Series(Key{Model: "m", Stage: 0, Device: 0, Kind: KindExec})

	const writers = 6
	const perWriter = 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := s.Producer()
			for i := 0; i < perWriter; i++ {
				p.Record(0.001)
				if i%512 == 0 {
					s.Stats() // fold concurrently with writes
				}
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.Count != writers*perWriter {
		t.Fatalf("count %d, want %d", st.Count, writers*perWriter)
	}
	if got := st.WindowCount + int(st.Dropped); got != writers*perWriter {
		t.Fatalf("window %d + dropped %d = %d, want %d", st.WindowCount, st.Dropped, got, writers*perWriter)
	}
	if st.WindowCount > 0 && st.P99 != 0.001 {
		t.Fatalf("p99 %v, want 0.001", st.P99)
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Window: time.Minute, now: clk.now})
	p := reg.Series(Key{Model: "toy", Stage: 1, Device: 2, Kind: KindStage}).Producer()
	for i := 0; i < 100; i++ {
		p.Record(float64(i+1) / 1000)
	}

	var b strings.Builder
	if err := reg.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pico_latency_seconds summary",
		`pico_latency_seconds{model="toy",stage="1",device="2",kind="stage",quantile="0.5"} 0.05`,
		`pico_latency_seconds{model="toy",stage="1",device="2",kind="stage",quantile="0.99"} 0.099`,
		`pico_latency_seconds_count{model="toy",stage="1",device="2",kind="stage"} 100`,
		`pico_latency_seconds_window{model="toy",stage="1",device="2",kind="stage"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestWatcherP99AndCooldown(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Window: time.Minute, now: clk.now})
	p := reg.Series(Key{Model: "toy", Stage: -1, Device: -1, Kind: KindE2E}).Producer()
	for i := 0; i < 50; i++ {
		p.Record(0.250) // well over the bound
	}

	var fired []Breach
	w, err := NewWatcher(reg, Policy{P99Bound: 0.100, MinSamples: 10, Cooldown: time.Minute},
		func(b Breach) { fired = append(fired, b) })
	if err != nil {
		t.Fatal(err)
	}

	breaches := w.Check(clk.now())
	if len(breaches) != 1 || breaches[0].Kind != BreachP99 {
		t.Fatalf("breaches = %+v, want one p99 breach", breaches)
	}
	if breaches[0].Observed != 0.250 {
		t.Fatalf("observed %v, want 0.25", breaches[0].Observed)
	}
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(fired))
	}

	// Within cooldown the same key stays quiet.
	clk.advance(10 * time.Second)
	if got := w.Check(clk.now()); len(got) != 0 {
		t.Fatalf("cooldown violated: %+v", got)
	}
	// After cooldown it fires again while still in breach.
	clk.advance(2 * time.Minute)
	for i := 0; i < 50; i++ {
		p.Record(0.250)
	}
	if got := w.Check(clk.now()); len(got) != 1 {
		t.Fatalf("post-cooldown check: %+v, want one breach", got)
	}
}

func TestWatcherDeviceSkew(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Window: time.Minute, now: clk.now})
	fast := reg.Series(Key{Model: "toy", Stage: 0, Device: 0, Kind: KindExec}).Producer()
	slow := reg.Series(Key{Model: "toy", Stage: 0, Device: 1, Kind: KindExec}).Producer()
	for i := 0; i < 40; i++ {
		fast.Record(0.010)
		slow.Record(0.080) // 8x skew
	}

	w, err := NewWatcher(reg, Policy{SkewFactor: 3, MinSamples: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	breaches := w.Check(clk.now())
	if len(breaches) != 1 || breaches[0].Kind != BreachSkew {
		t.Fatalf("breaches = %+v, want one skew breach", breaches)
	}
	if breaches[0].Key.Device != 1 {
		t.Fatalf("skew breach should name the slow device, got %+v", breaches[0].Key)
	}
	if breaches[0].Observed < 7.9 || breaches[0].Observed > 8.1 {
		t.Fatalf("skew ratio %v, want ~8", breaches[0].Observed)
	}
}

func TestWatcherPolicyValidation(t *testing.T) {
	reg := New(Options{})
	if _, err := NewWatcher(nil, Policy{}, nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewWatcher(reg, Policy{SkewFactor: 0.5}, nil); err == nil {
		t.Fatal("skew factor <= 1 accepted")
	}
	if _, err := NewWatcher(reg, Policy{P99Bound: -1}, nil); err == nil {
		t.Fatal("negative p99 bound accepted")
	}
}
