package telemetry

import (
	"math"
	"sync/atomic"
)

// ring is a fixed-size lock-free sample buffer split into per-producer
// stripes. Each stripe has its own atomic cursor, so producers bound to
// different stripes never touch the same cache line on the write path;
// producers sharing a stripe contend only on one atomic add.
//
// Slots are seqlock-published: a writer claims a global index with the
// cursor, marks the slot odd while storing the sample, then publishes the
// slot's new version. A reader validates the version before and after
// copying the fields, so a torn read (two writers a full lap apart, or a
// write racing the read) is detected and counted, never returned. Readers
// are single-threaded per series (the fold path holds the series mutex) and
// lossless up to one full lap of lag; beyond that the overwritten samples
// are counted in dropped.
type ring struct {
	stripes []ringStripe
}

type ringStripe struct {
	cursor atomic.Uint64
	slots  []ringSlot
	mask   uint64
	// _pad keeps neighbouring stripes' cursors off one cache line.
	_pad [104]byte //nolint:unused
}

// ringSlot holds one sample. seq carries the slot's published version:
// (i+1)<<1 after sample i is fully stored, i<<1|1 while it is being written.
type ringSlot struct {
	seq  atomic.Uint64
	at   atomic.Int64
	bits atomic.Uint64
}

// Sample is one recorded observation.
type Sample struct {
	// At is the observation time in Unix nanoseconds.
	At int64
	// V is the observed value (seconds for the latency series).
	V float64
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newRing(stripes, slots int) *ring {
	stripes = nextPow2(stripes)
	slots = nextPow2(slots)
	r := &ring{stripes: make([]ringStripe, stripes)}
	for i := range r.stripes {
		r.stripes[i].slots = make([]ringSlot, slots)
		r.stripes[i].mask = uint64(slots - 1)
	}
	return r
}

// record stores one sample on the given stripe. Lock-free and safe for any
// number of concurrent writers per stripe.
func (r *ring) record(stripe int, at int64, v float64) {
	st := &r.stripes[stripe&(len(r.stripes)-1)]
	i := st.cursor.Add(1) - 1
	s := &st.slots[i&st.mask]
	s.seq.Store(i<<1 | 1)
	s.at.Store(at)
	s.bits.Store(math.Float64bits(v))
	s.seq.Store((i + 1) << 1)
}

// total returns the lifetime number of claimed samples.
func (r *ring) total() int64 {
	var n uint64
	for i := range r.stripes {
		n += r.stripes[i].cursor.Load()
	}
	return int64(n)
}

// drain collects, per stripe, every sample published since from[i], appends
// them to buf, and advances from. Samples overwritten before this call (the
// reader lagged more than one lap) are counted in dropped. A slot whose
// write is still in flight stops that stripe's scan — it will be picked up
// by the next drain — so a completed write is never skipped.
//
// drain is not itself concurrency-safe: callers serialize it per ring (the
// series fold mutex).
func (r *ring) drain(from []uint64, buf []Sample) ([]Sample, int64) {
	var dropped int64
	for si := range r.stripes {
		st := &r.stripes[si]
		cur := st.cursor.Load()
		lo := from[si]
		if size := uint64(len(st.slots)); cur > size && lo < cur-size {
			dropped += int64(cur - size - lo)
			lo = cur - size
		}
		next := cur
		for j := lo; j < cur; j++ {
			want := (j + 1) << 1
			s := &st.slots[j&st.mask]
			seq := s.seq.Load()
			if seq < want {
				// Claimed but not yet published; stop here and retry on
				// the next fold so the sample is not lost.
				next = j
				break
			}
			if seq > want {
				dropped++ // overwritten by a writer a lap ahead
				continue
			}
			at := s.at.Load()
			bits := s.bits.Load()
			if s.seq.Load() != want {
				dropped++ // overwritten mid-read
				continue
			}
			buf = append(buf, Sample{At: at, V: math.Float64frombits(bits)})
		}
		from[si] = next
	}
	return buf, dropped
}
