package telemetry

import "math"

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) of vals using
// iterative quickselect with a median-of-three pivot: expected O(n), no full
// sort. The slice is partially reordered in place; an empty slice returns 0.
//
// Nearest-rank: the value at index ceil(q*n)-1 of the sorted slice, so
// Quantile(x, 1) is the maximum and Quantile(x, 0.5) of [1,2,3,4] is 2.
func Quantile(vals []float64, q float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(q*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return quickselect(vals, k)
}

// quickselect returns the k-th smallest element (0-based) of vals,
// partially reordering the slice.
func quickselect(vals []float64, k int) float64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		p := partition(vals, lo, hi)
		switch {
		case k == p:
			return vals[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return vals[k]
}

// partition orders vals[lo..hi] around a median-of-three pivot and returns
// the pivot's final index: everything left is <=, everything right is >=.
func partition(vals []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: sort (lo, mid, hi) so vals[mid] is the median, then
	// use it as the pivot (stashed at hi-1).
	if vals[mid] < vals[lo] {
		vals[mid], vals[lo] = vals[lo], vals[mid]
	}
	if vals[hi] < vals[lo] {
		vals[hi], vals[lo] = vals[lo], vals[hi]
	}
	if vals[hi] < vals[mid] {
		vals[hi], vals[mid] = vals[mid], vals[hi]
	}
	if hi-lo < 3 {
		return mid
	}
	pivot := vals[mid]
	vals[mid], vals[hi-1] = vals[hi-1], vals[mid]
	i, j := lo, hi-1
	for {
		for i++; vals[i] < pivot; i++ {
		}
		for j--; vals[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		vals[i], vals[j] = vals[j], vals[i]
	}
	vals[i], vals[hi-1] = vals[hi-1], vals[i]
	return i
}
