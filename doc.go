// Package pico is a Go implementation of PICO — the pipelined cooperation
// scheme for CNN inference on heterogeneous IoT edge clusters from "Towards
// Efficient Inference: Adaptively Cooperate in Heterogeneous IoT Edge
// Cluster" (ICDCS 2021) — together with every substrate its evaluation
// needs: the baseline parallelization schemes (layer-wise / MoDNN,
// early-fused-layer / DeepThings, optimal-fused-layer / AOFL, exhaustive
// BFS), a cluster simulator, an M/D/1-based adaptive scheme switcher
// (APICO), a pure-Go CNN tensor engine with bit-exact partitioned
// execution, and a TCP runtime that executes pipelines across worker
// processes.
//
// # The problem
//
// A CNN inference on one IoT device is slow; splitting every feature map
// across a cluster (layer-wise) drowns in per-layer WiFi transfers; fusing
// many layers so devices compute independently (fused-layer) recomputes the
// overlapping receptive-field halos over and over. PICO instead cuts the
// network into contiguous layer segments, assigns each segment to a device
// subset (a pipeline stage), and partitions only within a stage — the
// pipeline period, not the end-to-end latency, bounds throughput.
//
// # Quick start
//
//	model := pico.VGG16()
//	cl := pico.Homogeneous(8, 600e6) // 8 Raspberry Pi 4Bs at 600 MHz
//	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
//	if err != nil { ... }
//	fmt.Println(plan.Describe())     // stages, strips, period, latency
//
// A plan can be analysed (plan.PeriodSeconds, plan.Stats), simulated under
// a workload (simulate via Profile/RunOpenLoop), or executed for real over
// TCP workers (StartLocalCluster + NewPipeline + Submit).
//
// See the runnable programs under examples/ and the experiment regenerators
// behind cmd/picobench, which rebuild every table and figure of the paper's
// evaluation.
package pico
