package pico_test

// bench_test.go regenerates every table and figure of the paper under
// testing.B, one benchmark per experiment (see DESIGN.md's per-experiment
// index), plus micro-benchmarks for the planner, the partition math, the
// tensor engine, the wire codec and the TCP runtime. The figure benchmarks
// report the experiment's headline quantity via b.ReportMetric so a bench
// run doubles as a shape check:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (paper durations, 60s BFS budgets) is
// cmd/picobench's job; benchmarks use the Quick configuration.

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"pico"
	"pico/internal/cluster"
	"pico/internal/core"
	"pico/internal/experiments"
	"pico/internal/nn"
	"pico/internal/partition"
	"pico/internal/runtime"
	"pico/internal/schemes"
	"pico/internal/simulate"
	"pico/internal/telemetry"
	"pico/internal/tensor"
	"pico/internal/wire"
)

// runExperiment is the shared driver for figure/table benchmarks.
func runExperiment(b *testing.B, id string) []experiments.Table {
	b.Helper()
	cfg := experiments.Quick()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tables
}

func BenchmarkFig2LayerProfile(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig4FusedRedundancy(b *testing.B) { runExperiment(b, "fig4") }

func BenchmarkFig8VGG16Capacity(b *testing.B) {
	runExperiment(b, "fig8")
	reportCapacityMetrics(b, nn.VGG16())
}

func BenchmarkFig9YOLOv2Capacity(b *testing.B) {
	runExperiment(b, "fig9")
	reportCapacityMetrics(b, nn.YOLOv2())
}

// reportCapacityMetrics attaches the headline Fig. 8/9 numbers: the PICO
// period on 8x600MHz and its throughput gain over EFL.
func reportCapacityMetrics(b *testing.B, m *nn.Model) {
	b.Helper()
	cl := cluster.Homogeneous(8, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	efl, err := schemes.EarlyFusedLayer(m, cl, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(plan.PeriodSeconds, "pico-period-s")
	b.ReportMetric(efl.Seconds/plan.PeriodSeconds, "gain-vs-efl")
}

func BenchmarkFig10VGG16Latency(b *testing.B) {
	tables := runExperiment(b, "fig10")
	reportLatencyMetrics(b, tables)
}

func BenchmarkFig11YOLOv2Latency(b *testing.B) {
	tables := runExperiment(b, "fig11")
	reportLatencyMetrics(b, tables)
}

// reportLatencyMetrics attaches the heaviest-workload EFL/APICO latency
// ratio (the paper's 1.7–6.5x claim).
func reportLatencyMetrics(b *testing.B, tables []experiments.Table) {
	b.Helper()
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		b.Fatal("empty latency tables")
	}
	last := tables[0].Rows[len(tables[0].Rows)-1]
	efl := atofCell(b, last[1])
	apico := atofCell(b, last[4])
	b.ReportMetric(efl/apico, "latency-reduction-x")
}

func BenchmarkFig12GraphSpeedup(b *testing.B) {
	runExperiment(b, "fig12")
	cl := cluster.Homogeneous(8, 600e6)
	for _, m := range []*nn.Model{nn.ResNet34(), nn.InceptionV3()} {
		plan, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		single, err := core.SingleDevice(m, cl, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single.PeriodSeconds/plan.PeriodSeconds, m.Name+"-speedup-x")
	}
}

func BenchmarkTable1Utilization(b *testing.B) {
	runExperiment(b, "table1")
	// Headline: PICO's average utilization on the heterogeneous cluster.
	cl := cluster.PaperHeterogeneous()
	plan, err := core.PlanPipeline(nn.VGG16(), cl, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulate.RunClosedLoop(simulate.FromPlan("PICO", plan), 100, cl.Size())
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	for k := range cl.Devices {
		sum += res.Utilization(k)
	}
	b.ReportMetric(sum/float64(cl.Size()), "pico-avg-util")
}

func BenchmarkTable2PlannerCost(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig13PICOvsBFS(b *testing.B)    { runExperiment(b, "fig13") }
func BenchmarkBandwidthSweep(b *testing.B)    { runExperiment(b, "bandwidth") }

func BenchmarkAblationGreedy(b *testing.B)         { runExperiment(b, "ablation-greedy") }
func BenchmarkAblationBalancedStrips(b *testing.B) { runExperiment(b, "ablation-strips") }
func BenchmarkAblationLatencyBound(b *testing.B)   { runExperiment(b, "ablation-tlim") }
func BenchmarkAblationEWMA(b *testing.B)           { runExperiment(b, "ablation-ewma") }
func BenchmarkAblationRFMode(b *testing.B)         { runExperiment(b, "ablation-rfmode") }

// --- Micro-benchmarks on the core machinery ---

func BenchmarkPlannerVGG16x8(b *testing.B) {
	m := nn.VGG16()
	cl := cluster.PaperHeterogeneous()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanPipeline(m, cl, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerInceptionV3x8(b *testing.B) {
	m := nn.InceptionV3()
	cl := cluster.Homogeneous(8, 600e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanPipeline(m, cl, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalancedPartition(b *testing.B) {
	m := nn.VGG16Conv()
	calc := partition.NewCalc(m)
	weights := []float64{2.4e9, 2.4e9, 1.6e9, 1.6e9, 1.2e9, 1.2e9, 1.2e9, 1.2e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.Balanced(0, 10, weights)
	}
}

func BenchmarkRegionFLOPs(b *testing.B) {
	m := nn.YOLOv2()
	calc := partition.NewCalc(m)
	outH := m.OutShape(17).H
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.SegmentRegionFLOPs(0, 18, partition.Range{Lo: 0, Hi: outH / 8})
	}
}

func BenchmarkConvForwardTile(b *testing.B) {
	m := nn.ToyChain("bench", 4, 2, 16, 64)
	exec, err := tensor.NewExecutor(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 1)
	outH := m.Output().H
	part := partition.Range{Lo: 0, Hi: outH / 2}
	inR := exec.InputRange(0, m.NumLayers(), part)
	tile := in.SliceRows(inR.Lo, inR.Hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSegment(0, m.NumLayers(), tile, part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireTensorCodec(b *testing.B) {
	t := tensor.RandomInput(nn.Shape{C: 64, H: 56, W: 56}, 1)
	b.SetBytes(int64(4 * t.Elems()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := wire.EncodeTensor(t)
		if _, err := wire.DecodeTensor(t.C, t.H, t.W, payload); err != nil {
			b.Fatal(err)
		}
		wire.PutBuffer(payload)
	}
}

// BenchmarkWireTensorCodecPortable is the per-element reference codec — the
// baseline the zero-copy fast path in BenchmarkWireTensorCodec is measured
// against.
func BenchmarkWireTensorCodecPortable(b *testing.B) {
	t := tensor.RandomInput(nn.Shape{C: 64, H: 56, W: 56}, 1)
	b.SetBytes(int64(4 * t.Elems()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := wire.EncodeTensorPortable(t)
		if _, err := wire.DecodeTensorPortable(t.C, t.H, t.W, payload); err != nil {
			b.Fatal(err)
		}
		wire.PutBuffer(payload)
	}
}

func BenchmarkSimulatorOpenLoop(b *testing.B) {
	cl := cluster.PaperHeterogeneous()
	plan, err := core.PlanPipeline(nn.VGG16(), cl, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prof := simulate.FromPlan("PICO", plan)
	arrivals := simulate.PoissonArrivals(0.3, 3600, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.RunOpenLoop(prof, arrivals, cl.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimePipelineThroughput(b *testing.B) {
	m := nn.ToyChain("bench-rt", 6, 2, 8, 32)
	cl := cluster.Homogeneous(3, 600e6)
	plan, err := core.PlanPipeline(m, cl, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lc, err := runtime.StartLocalCluster(3, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	p, err := runtime.NewPipeline(plan, lc.Addrs, runtime.PipelineOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	in := tensor.RandomInput(m.Input, 1)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			res := <-p.Results()
			if res.Err != nil {
				b.Errorf("task %d: %v", res.ID, res.Err)
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if _, err := p.Submit(in); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// BenchmarkRuntimeFaultToleranceOverhead measures the no-fault cost of the
// fault-tolerance machinery. "guarded" runs the default configuration —
// per-call deadline timers, slot indirection, retry bookkeeping, write
// deadlines; "unguarded" disables the deadlines (ExecTimeout < 0), which is
// the pre-fault-tolerance wait path. The two throughputs should agree within
// ~2%: the timer is armed once per tile, off the per-byte path.
func BenchmarkRuntimeFaultToleranceOverhead(b *testing.B) {
	run := func(b *testing.B, timeout time.Duration) {
		m := nn.ToyChain("bench-ft", 6, 2, 8, 32)
		cl := cluster.Homogeneous(3, 600e6)
		plan, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lc, err := runtime.StartLocalCluster(3, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer lc.Close()
		p, err := runtime.NewPipeline(plan, lc.Addrs, runtime.PipelineOptions{Seed: 1, ExecTimeout: timeout})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		in := tensor.RandomInput(m.Input, 1)
		b.ResetTimer()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				res := <-p.Results()
				if res.Err != nil {
					b.Errorf("task %d: %v", res.ID, res.Err)
					return
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			if _, err := p.Submit(in); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}
	b.Run("guarded", func(b *testing.B) { run(b, 0) })
	b.Run("unguarded", func(b *testing.B) { run(b, -1) })
}

// BenchmarkRuntimeTelemetryOverhead measures the closed-loop throughput cost
// of the streaming-percentile engine: "instrumented" attaches a telemetry
// registry (e2e + per-stage + per-device exec samples on every task),
// "bare" runs the same pipeline without one. The write path is a few atomic
// stores per sample, so the two should agree within ~2%.
func BenchmarkRuntimeTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		m := nn.ToyChain("bench-tel", 6, 2, 8, 32)
		cl := cluster.Homogeneous(3, 600e6)
		plan, err := core.PlanPipeline(m, cl, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lc, err := runtime.StartLocalCluster(3, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer lc.Close()
		p, err := runtime.NewPipeline(plan, lc.Addrs, runtime.PipelineOptions{Seed: 1, Telemetry: reg})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		in := tensor.RandomInput(m.Input, 1)
		b.ResetTimer()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				res := <-p.Results()
				if res.Err != nil {
					b.Errorf("task %d: %v", res.ID, res.Err)
					return
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			if _, err := p.Submit(in); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}
	b.Run("instrumented", func(b *testing.B) { run(b, telemetry.New(telemetry.Options{})) })
	b.Run("bare", func(b *testing.B) { run(b, nil) })
}

func BenchmarkAdaptiveSwitcher(b *testing.B) {
	profiles, sw, est, err := pico.NewAdaptive(nn.VGG16(), cluster.PaperHeterogeneous(), 0.5, 10)
	if err != nil {
		b.Fatal(err)
	}
	_ = profiles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(float64(i) * 0.7)
		sw.Choose(est.Rate())
	}
}

// atofCell parses a formatted seconds cell.
func atofCell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

func BenchmarkAblationGrid(b *testing.B) { runExperiment(b, "ablation-grid") }

func BenchmarkExtMobileNet(b *testing.B) { runExperiment(b, "ext-mobilenet") }

func BenchmarkGridExecutorRemote(b *testing.B) {
	m := nn.ToyChain("bench-grid", 4, 2, 8, 32)
	lc, err := runtime.StartLocalCluster(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	out := m.Output()
	tiles := partition.GridPartition(out.H, out.W, 2, 2)
	addrs := []string{lc.Addrs[0], lc.Addrs[1], lc.Addrs[2], lc.Addrs[3]}
	ge, err := runtime.NewGridExecutor(m, 0, m.NumLayers(), tiles, addrs, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer ge.Close()
	in := tensor.RandomInput(m.Input, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ge.Infer(int64(i), in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSegmentRect(b *testing.B) {
	m := nn.ToyChain("bench-rect", 4, 2, 16, 64)
	exec, err := tensor.NewExecutor(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 1)
	out := m.Output()
	tile := partition.Rect{
		Rows: partition.Range{Lo: 0, Hi: out.H / 2},
		Cols: partition.Range{Lo: 0, Hi: out.W / 2},
	}
	calc := partition.NewCalc(m)
	need := calc.SegmentRects(0, m.NumLayers(), tile)[0]
	sub := in.SliceRect(need)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSegmentRect(0, m.NumLayers(), sub, tile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanSaveLoad(b *testing.B) {
	plan, err := core.PlanPipeline(nn.VGG16(), cluster.PaperHeterogeneous(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := core.SavePlan(&buf, plan); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LoadPlan(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerMobileNetV1(b *testing.B) {
	m := nn.MobileNetV1()
	cl := cluster.Homogeneous(8, 600e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanPipeline(m, cl, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverlap(b *testing.B) { runExperiment(b, "ablation-overlap") }

// conv1x1Chain is a pointwise-conv model exercising the stride-1 fast path
// with single-tap kernel rows (the 1x1 regime of MobileNet/Inception).
func conv1x1Chain() *nn.Model {
	return &nn.Model{
		Name:  "bench1x1",
		Input: nn.Shape{C: 32, H: 64, W: 64},
		Layers: []nn.Layer{
			nn.Conv1x1("pw1", 32, nn.ReLU),
			nn.Conv1x1("pw2", 32, nn.ReLU),
			nn.Conv1x1("pw3", 32, nn.ReLU),
		},
	}
}

// BenchmarkConvForwardParallel measures the kernel worker pool across
// parallelism settings, for 3x3 and 1x1 convolution regimes. On a
// multi-core host throughput should scale with p; on a single-core host the
// p>1 variants measure pool overhead.
func BenchmarkConvForwardParallel(b *testing.B) {
	cases := []struct {
		name string
		m    *nn.Model
	}{
		{"k3", nn.ToyChain("benchk3", 4, 2, 16, 64)},
		{"k1", conv1x1Chain()},
	}
	for _, tc := range cases {
		in := tensor.RandomInput(tc.m.Input, 1)
		outH := tc.m.Output().H
		part := partition.Range{Lo: 0, Hi: outH}
		for _, par := range []int{1, 2, 4, 8} {
			exec, err := tensor.NewExecutor(tc.m, 1, tensor.WithParallelism(par))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(tc.name+"/p"+strconv.Itoa(par), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := exec.RunSegment(0, tc.m.NumLayers(), in, part)
					if err != nil {
						b.Fatal(err)
					}
					tensor.Recycle(out)
				}
			})
		}
	}
}

// BenchmarkKernelKinds measures every layer-kind kernel as ref (the
// pre-blocking loops) vs blocked (the cache-blocked engine) pairs at par=1.
// internal/experiments/kernelbench.go runs the full sweep behind
// BENCH_PR4.json; these sub-benchmarks are the quick interactive view:
//
//	go test -bench 'KernelKinds' -benchtime=10x .
func BenchmarkKernelKinds(b *testing.B) {
	cases := []struct {
		name string
		in   nn.Shape
		l    nn.Layer
	}{
		{"conv3x3", nn.Shape{C: 64, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 64, Act: nn.ReLU}},
		{"conv1x7", nn.Shape{C: 64, H: 17, W: 17},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 1, KW: 7, SH: 1, SW: 1, PH: 0, PW: 3, OutC: 64, Act: nn.ReLU, BatchNorm: true}},
		{"pointwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 128, Act: nn.ReLU, BatchNorm: true}},
		{"depthwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 128, Groups: 128, Act: nn.ReLU, BatchNorm: true}},
		{"pool", nn.Shape{C: 64, H: 28, W: 28},
			nn.Layer{Name: "p", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2}},
		{"fc", nn.Shape{C: 256, H: 4, W: 4},
			nn.Layer{Name: "f", Kind: nn.FullyConnected, OutF: 512, Act: nn.ReLU}},
	}
	engines := []struct {
		name string
		opts []tensor.ExecutorOption
	}{
		{"ref", []tensor.ExecutorOption{tensor.WithParallelism(1), tensor.WithReferenceKernels()}},
		{"blocked", []tensor.ExecutorOption{tensor.WithParallelism(1)}},
	}
	for _, tc := range cases {
		m := &nn.Model{Name: "bk-" + tc.name, Input: tc.in, Layers: []nn.Layer{tc.l}}
		in := tensor.RandomInput(m.Input, 1)
		for _, eng := range engines {
			exec, err := tensor.NewExecutor(m, 1, eng.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(tc.name+"/"+eng.name, func(b *testing.B) {
				// Warm the weight cache and arena out of the timed region.
				if out, err := exec.Run(in); err != nil {
					b.Fatal(err)
				} else {
					tensor.Recycle(out)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := exec.Run(in)
					if err != nil {
						b.Fatal(err)
					}
					tensor.Recycle(out)
				}
			})
		}
	}
}

// BenchmarkQuantKernelKinds measures every layer-kind kernel float32-blocked
// vs int8-vectorized at par=1 — the quick interactive view of the
// BENCH_PR7.json sweep:
//
//	go test -bench 'QuantKernelKinds' -benchtime=10x .
func BenchmarkQuantKernelKinds(b *testing.B) {
	cases := []struct {
		name string
		in   nn.Shape
		l    nn.Layer
	}{
		{"conv3x3", nn.Shape{C: 64, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 64, Act: nn.ReLU}},
		{"pointwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 1, KW: 1, SH: 1, SW: 1, OutC: 128, Act: nn.ReLU, BatchNorm: true}},
		{"depthwise", nn.Shape{C: 128, H: 28, W: 28},
			nn.Layer{Name: "c", Kind: nn.Conv, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, OutC: 128, Groups: 128, Act: nn.ReLU, BatchNorm: true}},
		{"pool", nn.Shape{C: 64, H: 28, W: 28},
			nn.Layer{Name: "p", Kind: nn.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2}},
		{"fc", nn.Shape{C: 256, H: 4, W: 4},
			nn.Layer{Name: "f", Kind: nn.FullyConnected, OutF: 512, Act: nn.ReLU}},
	}
	for _, tc := range cases {
		m := &nn.Model{Name: "bq-" + tc.name, Input: tc.in, Layers: []nn.Layer{tc.l}}
		in := tensor.RandomInput(m.Input, 1)
		fexec, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		qexec, err := tensor.NewExecutor(m, 1, tensor.WithParallelism(1), tensor.WithQuantized())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/float", func(b *testing.B) {
			if out, err := fexec.Run(in); err != nil {
				b.Fatal(err)
			} else {
				tensor.Recycle(out)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := fexec.Run(in)
				if err != nil {
					b.Fatal(err)
				}
				tensor.Recycle(out)
			}
		})
		b.Run(tc.name+"/int8", func(b *testing.B) {
			if out, err := qexec.RunQ(in); err != nil {
				b.Fatal(err)
			} else {
				tensor.RecycleQ(out)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := qexec.RunQ(in)
				if err != nil {
					b.Fatal(err)
				}
				tensor.RecycleQ(out)
			}
		})
	}
}

// BenchmarkRunSegmentAlloc tracks steady-state allocations of the segment
// hot path: with the arena recycling outputs, allocs/op should be near zero
// after warm-up.
func BenchmarkRunSegmentAlloc(b *testing.B) {
	m := nn.ToyChain("benchalloc", 4, 2, 16, 64)
	exec, err := tensor.NewExecutor(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.RandomInput(m.Input, 1)
	outH := m.Output().H
	part := partition.Range{Lo: 0, Hi: outH / 2}
	inR := exec.InputRange(0, m.NumLayers(), part)
	tile := in.SliceRows(inR.Lo, inR.Hi)
	// Warm the weight cache and the arena size classes.
	if out, err := exec.RunSegment(0, m.NumLayers(), tile, part); err != nil {
		b.Fatal(err)
	} else {
		tensor.Recycle(out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := exec.RunSegment(0, m.NumLayers(), tile, part)
		if err != nil {
			b.Fatal(err)
		}
		tensor.Recycle(out)
	}
}
