// Grid tiles: the DeepThings-style 2D partition, executed for real. The
// fused early layers of a VGG-like model run as a 2x2 tile grid across four
// TCP workers; the example compares the grid against 4 row strips on the
// metrics DeepThings optimizes (per-device input footprint) and the one the
// paper optimizes (redundant work), then verifies the distributed grid
// output bit-for-bit against local inference.
//
//	go run ./examples/gridtiles
package main

import (
	"fmt"
	"os"
	"time"

	"pico"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gridtiles: %v\n", err)
		os.Exit(1)
	}
}

// vggish is a scaled-down VGG-style stack: enough depth for overlap halos
// to matter, small enough to run in seconds.
func vggish() (*pico.Model, error) {
	m := &pico.Model{
		Name:  "vggish",
		Input: pico.Shape{C: 3, H: 96, W: 96},
		Layers: []pico.Layer{
			pico.Conv3x3("c1a", 8, pico.ReLU),
			pico.Conv3x3("c1b", 8, pico.ReLU),
			pico.MaxPool2x2("p1"),
			pico.Conv3x3("c2a", 16, pico.ReLU),
			pico.Conv3x3("c2b", 16, pico.ReLU),
			pico.MaxPool2x2("p2"),
			pico.Conv3x3("c3a", 32, pico.ReLU),
			pico.Conv3x3("c3b", 32, pico.ReLU),
		},
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func run() error {
	model, err := vggish()
	if err != nil {
		return err
	}
	L := model.NumLayers()
	out := model.Output()
	calc := pico.NewPartitionCalc(model)

	// Analytics first: strips vs grid on the fused stack.
	strips := calc.GridStats(0, L, pico.GridPartition(out.H, out.W, 4, 1))
	grid := calc.GridStats(0, L, pico.GridPartition(out.H, out.W, 2, 2))
	fmt.Printf("fused %d-layer stack, output %v, 4 devices:\n", L, out)
	fmt.Printf("  %-10s total %6.2f GMACs  redundancy %5.1f%%  max tile input %6.2f KB\n",
		"4 strips", strips.TotalFLOPs/1e9, strips.Ratio()*100, float64(strips.MaxInputBytes)/1e3)
	fmt.Printf("  %-10s total %6.2f GMACs  redundancy %5.1f%%  max tile input %6.2f KB\n",
		"2x2 grid", grid.TotalFLOPs/1e9, grid.Ratio()*100, float64(grid.MaxInputBytes)/1e3)

	// Now run the grid for real over four worker processes.
	lc, err := pico.StartLocalCluster(4, nil)
	if err != nil {
		return err
	}
	defer lc.Close()
	addrs := []string{lc.Addrs[0], lc.Addrs[1], lc.Addrs[2], lc.Addrs[3]}
	const seed = 77
	ge, err := pico.NewGridExecutor(model, 0, L, pico.GridPartition(out.H, out.W, 2, 2), addrs, seed)
	if err != nil {
		return err
	}
	defer ge.Close()

	ref, err := pico.NewExecutor(model, seed)
	if err != nil {
		return err
	}
	fmt.Println("\ndistributing 5 frames as 2x2 tile grids:")
	for task := int64(1); task <= 5; task++ {
		in := pico.RandomInput(model.Input, task)
		start := time.Now()
		got, err := ge.Infer(task, in)
		if err != nil {
			return err
		}
		want, err := ref.Run(in)
		if err != nil {
			return err
		}
		if !pico.TensorsEqual(want, got) {
			return fmt.Errorf("frame %d: grid output differs from local reference", task)
		}
		fmt.Printf("  frame %d: %dx%dx%d stitched in %v (bit-exact)\n",
			task, got.C, got.H, got.W, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nevery stitched grid matches single-device inference exactly.")
	return nil
}
