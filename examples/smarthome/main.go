// Smart home: the paper's motivating scenario for adaptive switching
// (§II, §IV-C). A camera cluster is idle while the occupants are at work
// and busy in the evening; APICO watches the arrival rate with an EWMA and
// switches between the one-stage fused scheme (best latency when idle) and
// the PICO pipeline (best throughput when busy).
//
//	go run ./examples/smarthome
package main

import (
	"fmt"
	"math"
	"os"

	"pico"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "smarthome: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	model := pico.VGG16()
	cl := pico.PaperHeterogeneous()

	profiles, switcher, estimator, err := pico.NewAdaptive(model, cl, 0.5, 10)
	if err != nil {
		return err
	}
	oneStage, pipeline := profiles[0], profiles[1]
	fmt.Printf("one-stage (OFL): period = latency = %.2fs\n", oneStage.Period())
	fmt.Printf("pipeline (PICO): period %.2fs, latency %.2fs\n\n", pipeline.Period(), pipeline.Latency())

	// A day in simulated seconds (compressed 1:60 — one simulated hour per
	// minute): quiet overnight, a morning bump, near-zero while everyone
	// is at work, then a heavy evening peak above the one-stage capacity.
	day := 24 * 60.0
	peak := 1.2 / oneStage.Period()
	rateAt := func(t float64) float64 {
		hour := t / 60
		switch {
		case hour < 7:
			return 0.05 * peak
		case hour < 9:
			return 0.5 * peak
		case hour < 17:
			return 0.1 * peak
		case hour < 23:
			return peak * (0.8 + 0.2*math.Sin((hour-17)/6*math.Pi))
		default:
			return 0.2 * peak
		}
	}
	arrivals, err := pico.VariableRatePoisson(rateAt, peak, day, 7)
	if err != nil {
		return err
	}
	fmt.Printf("day cycle: %d tasks over %.0f simulated minutes, evening peak %.2f tasks/s\n",
		len(arrivals), day, peak)

	adaptive, err := pico.RunAdaptive(profiles, switcher, estimator, arrivals, cl.Size())
	if err != nil {
		return err
	}

	// Compare against running either scheme all day.
	static := make(map[string]float64, 2)
	for _, prof := range profiles {
		res, err := pico.RunOpenLoop(prof, arrivals, cl.Size())
		if err != nil {
			return err
		}
		static[prof.Name] = res.AvgLatency()
	}

	fmt.Printf("\n%-18s %12s %12s\n", "policy", "avg lat (s)", "p95 (s)")
	fmt.Printf("%-18s %12.2f %12s\n", "always OFL", static["OFL"], "-")
	fmt.Printf("%-18s %12.2f %12s\n", "always PICO", static["PICO"], "-")
	fmt.Printf("%-18s %12.2f %12.2f\n", "APICO (adaptive)", adaptive.AvgLatency(), adaptive.Percentile(0.95))
	fmt.Printf("\nscheme usage: %v\n", adaptive.SchemeTasks)
	best := math.Min(static["OFL"], static["PICO"])
	if adaptive.AvgLatency() <= best*1.05 {
		fmt.Println("APICO matches or beats the better static policy across the whole day.")
	}
	return nil
}
