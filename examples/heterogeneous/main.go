// Heterogeneous adaptation: how Algorithm 2 reshapes a pipeline when the
// cluster mixes fast and slow devices. The example plans YOLOv2 on the
// paper's mixed-frequency rack (2x1.2 GHz, 2x800 MHz, 4x600 MHz Pis), shows
// the capacity-aware strip sizes the divide-and-conquer balancer picks, and
// contrasts the period and per-device utilization with the
// heterogeneity-blind variant.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"os"

	"pico"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "heterogeneous: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	model := pico.YOLOv2()
	cl := pico.PaperHeterogeneous()
	fmt.Println("cluster:")
	for _, d := range cl.Devices {
		fmt.Printf("  %-14s %.2f GMAC/s\n", d.ID, d.EffectiveSpeed()/1e9)
	}

	adapted, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		return err
	}
	blind, err := pico.PlanPipeline(model, cl, pico.PlanOptions{NoHeterogeneityAdaptation: true})
	if err != nil {
		return err
	}

	fmt.Println("\nwith Algorithm 2 (greedy placement + divide-and-conquer strips):")
	fmt.Print(adapted.Describe())
	fmt.Println("\nheterogeneity-blind (positional placement, equal strips):")
	fmt.Printf("  period %.3fs vs %.3fs adapted — adaptation wins %.1f%%\n",
		blind.PeriodSeconds, adapted.PeriodSeconds,
		(blind.PeriodSeconds/adapted.PeriodSeconds-1)*100)

	// Show how strip heights track device speed inside one multi-device
	// stage: faster devices get taller strips.
	for _, st := range adapted.Stages {
		if st.Workers() < 2 {
			continue
		}
		fmt.Printf("\nstage [%d,%d) strip heights vs device speed:\n", st.From, st.To)
		for k, di := range st.DeviceIdx {
			if st.Parts[k].Empty() {
				continue
			}
			d := cl.Devices[di]
			fmt.Printf("  %-14s %.2f GMAC/s -> %3d rows\n",
				d.ID, d.EffectiveSpeed()/1e9, st.Parts[k].Len())
		}
		break
	}

	// Utilization under saturation for both variants (Table I's metric).
	fmt.Printf("\n%-14s %12s %12s\n", "device", "adapted", "blind")
	resA, err := pico.RunClosedLoop(pico.ProfileFromPlan("PICO", adapted), 200, cl.Size())
	if err != nil {
		return err
	}
	resB, err := pico.RunClosedLoop(pico.ProfileFromPlan("blind", blind), 200, cl.Size())
	if err != nil {
		return err
	}
	var sumA, sumB float64
	for k, d := range cl.Devices {
		ua, ub := resA.Utilization(k), resB.Utilization(k)
		sumA += ua
		sumB += ub
		fmt.Printf("%-14s %11.1f%% %11.1f%%\n", d.ID, ua*100, ub*100)
	}
	n := float64(cl.Size())
	fmt.Printf("%-14s %11.1f%% %11.1f%%\n", "average", sumA/n*100, sumB/n*100)
	return nil
}
