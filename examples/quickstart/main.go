// Quickstart: plan a PICO pipeline for VGG16 on an 8-device edge cluster,
// compare it against the baselines, and read the paper's headline numbers
// off your own machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"pico"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's testbed: 8 Raspberry Pi 4Bs pinned to one 600 MHz core
	// behind a 50 Mbps WiFi access point.
	model := pico.VGG16()
	cl := pico.Homogeneous(8, 600e6)
	fmt.Printf("model: %v\ncluster: %d devices, %.1f GMAC/s total, %.0f Mbps WLAN\n\n",
		model, cl.Size(), cl.TotalCapacity()/1e9, cl.BandwidthBps*8/1e6)

	// Plan the pipeline (Algorithm 1 + 2).
	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())

	// Compare with the baselines the paper evaluates.
	single, err := pico.SingleDevice(model, cl, 0)
	if err != nil {
		return err
	}
	lw, err := pico.LayerWise(model, cl)
	if err != nil {
		return err
	}
	efl, err := pico.EarlyFusedLayer(model, cl, 0)
	if err != nil {
		return err
	}
	ofl, err := pico.OptimalFusedLayer(model, cl, pico.OFLOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\n%-22s %10s %12s\n", "scheme", "period(s)", "tasks/min")
	for _, row := range []struct {
		name   string
		period float64
	}{
		{"single device", single.PeriodSeconds},
		{"layer-wise (MoDNN)", lw.Seconds},
		{"early-fused (DeepThings)", efl.Seconds},
		{"optimal-fused (AOFL)", ofl.Seconds},
		{"PICO pipeline", plan.PeriodSeconds},
	} {
		fmt.Printf("%-22s %10.3f %12.1f\n", row.name, row.period, 60/row.period)
	}
	fmt.Printf("\nPICO throughput gain: %.1fx over single device, %.1fx over the best fused baseline\n",
		single.PeriodSeconds/plan.PeriodSeconds, ofl.Seconds/plan.PeriodSeconds)

	// Simulate a saturated cluster and report utilization/redundancy (the
	// paper's Table I metrics).
	prof := pico.ProfileFromPlan("PICO", plan)
	res, err := pico.RunClosedLoop(prof, 200, cl.Size())
	if err != nil {
		return err
	}
	fmt.Println("\nsaturated-cluster device report:")
	for k, d := range cl.Devices {
		fmt.Printf("  %-8s util=%5.1f%%  redundancy=%4.1f%%\n",
			d.ID, res.Utilization(k)*100, res.RedundancyRatio(k)*100)
	}
	return nil
}
