// Object detection over real TCP workers: a camera feeds frames into a
// YOLO-style detector pipelined across four worker processes on localhost,
// exactly the dataflow of the paper's Fig. 6 (split -> distribute ->
// gather -> stitch -> forward). Every output is verified bit-for-bit
// against a local reference execution.
//
// The network is a scaled-down YOLOv2 (same topology, fewer channels,
// 112x112 input) so the demo runs in seconds on one machine; the full
// YOLOv2 runs the same code path, just slower.
//
//	go run ./examples/objectdetect
package main

import (
	"fmt"
	"os"
	"time"

	"pico"
)

// tinyYOLO mirrors YOLOv2's shape — conv/pool backbone plus a 1x1 detection
// head — at 1/8 the channel width and 112x112 input.
func tinyYOLO() (*pico.Model, error) {
	conv := func(name string, k, outC int) pico.Layer {
		l := pico.Layer{Name: name, Kind: pico.Conv, KH: k, KW: k, SH: 1, SW: 1, OutC: outC, Act: pico.LeakyReLU}
		if k == 3 {
			l.PH, l.PW = 1, 1
		}
		return l
	}
	pool := func(name string) pico.Layer {
		return pico.Layer{Name: name, Kind: pico.MaxPool, KH: 2, KW: 2, SH: 2, SW: 2, Act: pico.NoAct}
	}
	m := &pico.Model{
		Name:  "tiny-yolo",
		Input: pico.Shape{C: 3, H: 112, W: 112},
		Layers: []pico.Layer{
			conv("c1", 3, 8), pool("p1"),
			conv("c2", 3, 16), pool("p2"),
			conv("c3", 3, 32), conv("c4", 1, 16), conv("c5", 3, 32), pool("p3"),
			conv("c6", 3, 64), conv("c7", 1, 32), conv("c8", 3, 64), pool("p4"),
			conv("c9", 3, 128), conv("c10", 3, 128),
			conv("head", 1, 55), // 5 anchors x (6 classes + 5)
		},
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "objectdetect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	model, err := tinyYOLO()
	if err != nil {
		return err
	}
	cl := pico.Homogeneous(4, 600e6)
	plan, err := pico.PlanPipeline(model, cl, pico.PlanOptions{})
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())

	// Four worker processes on loopback ports stand in for the Pi rack.
	lc, err := pico.StartLocalCluster(4, nil)
	if err != nil {
		return err
	}
	defer lc.Close()
	const seed = 2024
	p, err := pico.NewPipeline(plan, lc.Addrs, pico.PipelineOptions{Seed: seed})
	if err != nil {
		return err
	}
	defer p.Close()

	ref, err := pico.NewExecutor(model, seed)
	if err != nil {
		return err
	}

	const frames = 12
	inputs := make([]pico.Tensor, frames)
	for i := range inputs {
		inputs[i] = pico.RandomInput(model.Input, int64(i)) // synthetic camera frames
	}
	fmt.Printf("\nstreaming %d frames through the pipeline...\n", frames)
	start := time.Now()
	go func() {
		for _, in := range inputs {
			if _, err := p.Submit(in); err != nil {
				fmt.Fprintf(os.Stderr, "submit: %v\n", err)
				return
			}
		}
	}()
	verified := 0
	for res := range p.Results() {
		if res.Err != nil {
			return res.Err
		}
		want, err := ref.Run(inputs[res.ID-1])
		if err != nil {
			return err
		}
		if !pico.TensorsEqual(want, res.Output) {
			return fmt.Errorf("frame %d detection grid differs from reference", res.ID)
		}
		fmt.Printf("frame %2d: %dx%dx%d detection grid in %v (verified)\n",
			res.ID, res.Output.C, res.Output.H, res.Output.W,
			res.Done.Sub(res.Submitted).Round(time.Millisecond))
		verified++
		if verified == frames {
			break
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d frames in %v — %.1f fps, every detection grid bit-identical to single-device inference\n",
		frames, elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	return nil
}
